//! Per-peer protocol state machines.
//!
//! Each peer runs one relay protocol (Graphene, Compact Blocks, XThin, or
//! full blocks) as a message-driven state machine: the simulator delivers a
//! decoded frame, the peer mutates its session state and emits response
//! frames. After reconstructing a block a peer announces it onward, so a
//! topology-wide run models real gossip propagation.
//!
//! # The failure-recovery ladder
//!
//! A Graphene receiver that cannot reconstruct a block climbs a bounded
//! ladder of cheaper-to-more-expensive rungs instead of looping on the
//! same request:
//!
//! 1. **Graphene** — the ordinary Protocol 1 (+2) exchange;
//! 2. **GrapheneRetry** — a [`Message::GetGrapheneRetry`] re-request; the
//!    sender re-encodes with a fresh salt, a decayed β budget and an
//!    inflated IBLT (Theorem 3's knobs), so a decode that failed by chance
//!    almost surely succeeds on retry;
//! 3. **ShortIdFetch** — an xthin-style exchange: the receiver ships a
//!    mempool Bloom filter, the sender answers with the block's short IDs
//!    plus whatever the filter missed;
//! 4. **FullBlock** — the uncompressed block, which cannot fail.
//!
//! If the ladder is exhausted against one server (e.g. it stalls), the
//! session *fails over* to an alternate announcing peer and restarts at
//! rung 1.
//!
//! # Adversarial hardening
//!
//! Inbound messages are checked against §6.2 resource caps
//! ([`MessageCaps`]), and provably hostile constructions — a cap
//! violation, or an IBLT that double-decodes (the §6.1 attack, surfaced by
//! the core as `Malformed`) — add [`MALFORMED_SCORE`] to the sender's
//! misbehavior score. At [`BAN_THRESHOLD`] the sender is banned: its
//! frames are ignored and every session it served fails over immediately.
//! Non-attributable failures (timeouts, undecodable IBLTs, wrong bodies)
//! never ban — link loss and corruption can cause all of them.
//!
//! # Adaptive failure detection
//!
//! Peers that [`Peer::enable_adaptive`] replace the fixed 2 s retry base
//! with a per-server RTO ([`crate::rtt`]), sampled from request→response
//! pairs under Karn's rule (a request that timed out never yields a
//! sample, so a tarpit cannot teach us its own slowness). When a session
//! timer fires but the ladder has not given up, the re-request is
//! *hedged*: a duplicate goes to the best alternate announcer, the first
//! response wins ([`RxSession::accept_from`]), and the loser's late reply
//! is silently discarded — never punished, because an unsolicited-looking
//! response may simply be the slower half of our own hedge. The same
//! non-attributable failures feed a per-peer circuit breaker
//! ([`crate::health`]) that steers failover and hedge selection away from
//! peers that keep timing out, with deterministic half-open probes.
//! Everything stays off (`adaptive = false`) by default, so the fixed-arm
//! simulations reproduce the seed byte for byte.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::adversary::Behavior;
use crate::caps::MessageCaps;
use crate::health::{BreakerState, HealthTracker, MAX_HEALTH_ENTRIES};
use crate::rtt::{RttEstimate, RttTable, MAX_RTT_ENTRIES, TRACKER_ENTRY_BYTES};
use crate::time::SimTime;
use bytes::Bytes;
use graphene::config::GrapheneConfig;
use graphene::encode_cache::{CacheKey, CacheStats, EncodeCache};
use graphene::error::{P1Failure, P2Failure};
use graphene::protocol1::{self, CandidateSet, RetryTweak};
use graphene::protocol2::{self};
use graphene::recovery::rateless_salt;
use graphene::NodeSnapshot;
use graphene_blockchain::{Block, Header, Mempool, OrderingScheme, Transaction, TxId};
use graphene_bloom::BloomFilter;
use graphene_hashes::{sha256, short_id_6, short_id_8, Digest, SipKey};
use graphene_iblt::rateless::{
    CellStream, DecodeProgress, RatelessDecoder, RatelessError, MAX_CELLS_PER_BATCH,
};
use graphene_wire::messages::{
    BlockTxnMsg, CmpctBlockMsg, FullBlockMsg, GetBlockTxnMsg, GetDataMsg, GetFullBlockMsg,
    GetGrapheneRetryMsg, GetGrapheneTxnMsg, GetMoreCellsMsg, GetTxnsMsg, InvMsg, Message,
    RatelessCellsMsg, TxInvMsg, TxnsMsg, XthinBlockMsg, XthinGetDataMsg,
};
use graphene_wire::Encode;
use std::collections::{HashMap, HashSet, VecDeque};

/// Same-rung retries for the non-Graphene protocols before the full-block
/// rung (the seed's fixed retry budget).
pub const MAX_ATTEMPTS: u32 = 3;

/// `GetGrapheneRetry` re-requests before escalating to short-ID fetch.
pub const MAX_GRAPHENE_RETRIES: u32 = 2;

/// Coded-cell batches a rateless-rung session may consume (responses or
/// timed-out window re-requests) before falling through to short-ID fetch
/// — the bounded-batch knob mirroring `RecoveryPolicy::rateless_max_batches`.
pub const MAX_RATELESS_BATCHES: u32 = 8;

/// Misbehavior score at which a peer is banned.
pub const BAN_THRESHOLD: u32 = 100;

/// Score for a provably malformed message (one offence bans).
pub const MALFORMED_SCORE: u32 = 100;

/// Timer-epoch flag marking a *sender-side announcement* retry timer
/// rather than a receiver-session timer. The network layer masks it off
/// before computing the backoff delay.
pub const ANN_FLAG: u32 = 1 << 31;

/// Bounded `Inv` re-announcements to neighbors that never responded — the
/// sender-side rung of the recovery ladder. Without it a single dropped or
/// corrupted announcement frame starves a peer forever (invs are one-shot
/// and nothing downstream retries them).
const MAX_ANN_RETRIES: u32 = 3;

/// Full ladder traversals (ending in a failover with no alternate left)
/// before a session is abandoned as unservable.
const MAX_LADDER_CYCLES: u32 = 2;

/// Accounted fixed overhead of one open [`RxSession`] (struct + map slots),
/// charged against the memory budget alongside its variable body bytes.
const SESSION_FIXED_BYTES: u64 = 512;

/// Accounted fixed overhead of one `pending_announcements` entry.
const PENDING_FIXED_BYTES: u64 = 64;

/// Caps on every per-peer resource. `Default` is generous enough that the
/// healthy-network simulations never hit a limit; chaos/overload sweeps
/// tighten them to exercise shedding.
#[derive(Clone, Copy, Debug)]
pub struct ResourceLimits {
    /// Concurrent receive sessions; further announcements are ignored
    /// until a slot frees (a later re-announcement reopens them).
    pub max_sessions: usize,
    /// Blocks with re-announcement timers pending at once.
    pub max_pending_announcements: usize,
    /// Orphan transaction bodies buffered per session, in bytes.
    pub max_body_bytes: u64,
    /// Remote peers whose misbehavior score is tracked.
    pub max_misbehavior_entries: usize,
    /// Inbound queue depth in frames.
    pub max_queue_frames: usize,
    /// Inbound queue depth in bytes.
    pub max_queue_bytes: u64,
    /// Byte budget of the encode-once relay cache (used only by peers that
    /// [`Peer::enable_encode_cache`]; LRU eviction keeps the cache under
    /// it, and it is charged against the accounted ceiling regardless so
    /// enabling the cache never grows a node past its declared memory).
    pub max_encode_cache_bytes: u64,
    /// In-flight rateless decode state per session, in bytes (materialized
    /// cells plus the pending-participation heap). A session whose next
    /// batch would exceed this abandons the stream and falls through to
    /// short-ID fetch.
    pub max_rateless_state_bytes: u64,
    /// Per-frame processing time (0 = process instantly, the pre-chaos
    /// behavior: the queue drains in zero simulated time).
    pub proc_delay_per_frame: crate::time::SimTime,
    /// Additional processing time per KiB of frame.
    pub proc_delay_per_kb: crate::time::SimTime,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_sessions: 64,
            max_pending_announcements: 64,
            max_body_bytes: 4 << 20,
            max_misbehavior_entries: 256,
            max_queue_frames: 4096,
            max_queue_bytes: 64 << 20,
            max_encode_cache_bytes: 8 << 20,
            max_rateless_state_bytes: 1 << 20,
            proc_delay_per_frame: crate::time::SimTime::ZERO,
            proc_delay_per_kb: crate::time::SimTime::ZERO,
        }
    }
}

impl ResourceLimits {
    /// Upper bound on [`ResourceAccounting::accounted_bytes`] implied by
    /// these caps — what the chaos sweep asserts is never exceeded.
    pub fn accounted_ceiling(&self) -> u64 {
        self.max_queue_bytes
            + self.max_sessions as u64
                * (SESSION_FIXED_BYTES + self.max_body_bytes + self.max_rateless_state_bytes)
            + self.max_pending_announcements as u64 * PENDING_FIXED_BYTES
            + self.max_encode_cache_bytes
            // Adaptive failure-detection state: the RTT table, the breaker
            // table, and at most two in-flight request stamps (primary +
            // hedge) per session. All three are capped, so the ceiling
            // holds whether or not adaptive detection is enabled.
            + (MAX_RTT_ENTRIES + MAX_HEALTH_ENTRIES + 2 * self.max_sessions) as u64
                * TRACKER_ENTRY_BYTES
    }

    /// Simulated time to process one inbound frame of `bytes` bytes.
    pub fn proc_time(&self, bytes: usize) -> crate::time::SimTime {
        crate::time::SimTime(
            self.proc_delay_per_frame.0
                + self.proc_delay_per_kb.0.saturating_mul(bytes as u64) / 1024,
        )
    }
}

/// Point-in-time resource usage of one peer, in accounted bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceAccounting {
    /// Frames waiting in the inbound queue.
    pub queue_frames: usize,
    /// Bytes waiting in the inbound queue.
    pub queue_bytes: u64,
    /// Open receive sessions.
    pub sessions: usize,
    /// Orphan body bytes buffered across all sessions.
    pub body_bytes: u64,
    /// Blocks with re-announcement timers pending.
    pub pending_announcements: usize,
    /// Frame bytes held by the encode-once relay cache (zero when the
    /// cache is disabled).
    pub encode_cache_bytes: u64,
    /// In-flight rateless decode state across all sessions (volatile,
    /// like the sessions that own it).
    pub rateless_state_bytes: u64,
    /// Adaptive failure-detection state: RTT estimates, breaker entries
    /// and in-flight request stamps (zero when adaptive is off).
    pub tracker_bytes: u64,
    /// Highest accounted-byte total ever observed at this peer.
    pub hwm_bytes: u64,
    /// Inbound frames shed by the load-shedding policy (lifetime).
    pub shed_frames: u64,
}

impl ResourceAccounting {
    /// Total accounted memory right now.
    pub fn accounted_bytes(&self) -> u64 {
        self.queue_bytes
            + self.sessions as u64 * SESSION_FIXED_BYTES
            + self.body_bytes
            + self.pending_announcements as u64 * PENDING_FIXED_BYTES
            + self.encode_cache_bytes
            + self.rateless_state_bytes
            + self.tracker_bytes
    }
}

/// Load-shedding class of an inbound frame. Announcements are droppable
/// (the bounded re-announcement timer re-sends them); recovery frames of
/// an *active* session are never shed — dropping one would stall a
/// session that already paid for its request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FrameClass {
    /// `Inv`/`TxInv`: cheapest to shed, retransmitted by design.
    Announcement,
    /// Block payload or repair data for an open session.
    ActiveRecovery,
    /// Everything else (requests we serve, unsolicited payloads).
    Other,
}

/// Peer identifier (index into the network's peer table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub usize);

/// Which relay protocol a peer speaks.
#[derive(Clone, Debug)]
pub enum RelayProtocol {
    /// Graphene Protocols 1 + 2.
    Graphene(GrapheneConfig),
    /// BIP152 Compact Blocks.
    CompactBlocks,
    /// BUIP010 XThin.
    Xthin {
        /// FPR of the receiver's mempool filter.
        filter_fpr: f64,
    },
    /// Uncompressed blocks.
    FullBlocks,
}

/// Rungs of the failure-recovery ladder, cheapest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The protocol's ordinary block request.
    Graphene,
    /// Re-request with inflated parameters and a fresh salt.
    GrapheneRetry,
    /// Rateless coded-cell stream against the candidate set the failed
    /// Graphene attempt already built (peers that
    /// [`Peer::enable_rateless`] take this rung *instead of* the retry).
    Rateless,
    /// Xthin-style short-ID fetch.
    ShortIdFetch,
    /// Uncompressed block (cannot fail).
    FullBlock,
}

/// What [`RxSession::accept_from`] decided about a response's sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HedgeOutcome {
    /// The current server answered; no hedge was outstanding.
    Normal,
    /// The current server answered first; the outstanding hedge was wasted.
    PrimaryWon,
    /// The hedge target answered first and is promoted to server.
    HedgeWon,
}

/// Receiver-side session state for one block.
struct RxSession {
    server: PeerId,
    /// Other peers that announced this block; failover candidates.
    alternates: Vec<PeerId>,
    /// Outstanding hedged-fetch target: a second server the current rung's
    /// request was duplicated to. First response wins; the loser's late
    /// reply is discarded without punishment.
    hedge: Option<PeerId>,
    /// Timer epoch: bumped whenever the session advances, so stale timers
    /// are recognised and ignored.
    attempt: u32,
    /// Current ladder rung.
    rung: Rung,
    /// Same-rung retries consumed (plain re-requests / graphene retries).
    retries: u32,
    phase: RxPhase,
    /// Full ladder traversals completed (each ends in a failover attempt).
    cycles: u32,
    /// Bodies collected during the session (prefilled, missing, fetched).
    bodies: HashMap<TxId, Transaction>,
    /// Accounted bytes in `bodies` (kept incrementally; capped by
    /// [`ResourceLimits::max_body_bytes`]).
    body_bytes: u64,
}

impl RxSession {
    fn new(server: PeerId) -> RxSession {
        RxSession {
            server,
            alternates: Vec::new(),
            hedge: None,
            attempt: 0,
            rung: Rung::Graphene,
            retries: 0,
            phase: RxPhase::Requested,
            cycles: 0,
            bodies: HashMap::new(),
            body_bytes: 0,
        }
    }

    /// Buffer a transaction body, respecting the orphan-body cap. A body
    /// past the cap is dropped — the session can still finish from the
    /// mempool, or the ladder's full-block rung re-ships everything.
    fn add_body(&mut self, limits: &ResourceLimits, tx: &Transaction) {
        if self.bodies.contains_key(tx.id()) {
            return;
        }
        let sz = tx.size() as u64;
        if self.body_bytes + sz > limits.max_body_bytes {
            return;
        }
        self.body_bytes += sz;
        self.bodies.insert(*tx.id(), tx.clone());
    }

    /// Advance the timer epoch, clamped below [`ANN_FLAG`]: a session
    /// epoch must never reach the announcement-flag bit, or its timer
    /// would be misrouted to `announce_timeout` when it fires.
    fn bump_epoch(&mut self) {
        self.attempt = (self.attempt + 1) & (ANN_FLAG - 1);
    }

    /// First-response-wins arbitration for a block-payload message from
    /// `from`. `None` means the response is neither from the current
    /// server nor the outstanding hedge — unsolicited, or the losing half
    /// of a resolved hedge — and must be silently discarded (never
    /// punished: it can be our own late hedge reply).
    fn accept_from(&mut self, from: PeerId) -> Option<HedgeOutcome> {
        if from == self.server {
            return Some(if self.hedge.take().is_some() {
                HedgeOutcome::PrimaryWon
            } else {
                HedgeOutcome::Normal
            });
        }
        if self.hedge == Some(from) {
            // Promote the hedge: it answered first. The old server stays
            // available as a failover candidate.
            let old = self.server;
            self.server = from;
            self.hedge = None;
            if !self.alternates.contains(&old) {
                self.alternates.push(old);
            }
            return Some(HedgeOutcome::HedgeWon);
        }
        None
    }
}

enum RxPhase {
    /// Request sent, awaiting the block payload.
    Requested,
    /// Graphene Protocol 2 request sent.
    GrapheneP2 {
        state: Box<CandidateSet>,
        header: Header,
        order_bytes: Vec<u8>,
        block_tx_count: usize,
    },
    /// Rateless cell stream in flight: the decoder accumulates windows
    /// until the difference peels.
    Rateless {
        by_short: HashMap<u64, TxId>,
        decoder: Box<RatelessDecoder>,
        header: Header,
        order_bytes: Vec<u8>,
    },
    /// Graphene extra-fetch of R false positives sent.
    GrapheneFetch { resolved: HashMap<u64, TxId>, header: Header, order_bytes: Vec<u8> },
    /// Compact Blocks repair round pending; slots hold resolved IDs.
    CompactWait { header: Header, slots: Vec<Option<TxId>>, missing: Vec<u64> },
    /// XThin repair round pending.
    XthinWait { header: Header, ids: Vec<TxId>, unresolved: Vec<u64> },
}

/// Gossip fan-out policy for block announcements.
///
/// [`FanoutPolicy::Flood`] is the seed behavior: every completed block is
/// announced to every neighbor at once, and un-acknowledged neighbors are
/// all re-inv'd on each retry. At internet scale that is wasteful — a
/// Barabási–Albert hub with a thousand neighbors floods a thousand `Inv`s
/// for a block most neighbors are about to hear of anyway.
/// [`FanoutPolicy::Adaptive`] announces to a small deterministic first
/// wave and *escalates aggression on stall* (the polkadot
/// approval-distribution idiom): each re-announcement timer that fires
/// with neighbors still unacknowledged doubles the wave, and the final
/// retry before the give-up bound covers every remaining neighbor, so
/// the bounded-retry delivery guarantee is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FanoutPolicy {
    /// Announce to all neighbors immediately (the seed behavior).
    Flood,
    /// Announce to `initial` neighbors, doubling the wave on each stalled
    /// retry and covering everyone by the last one.
    Adaptive {
        /// First-wave size (clamped to at least 1).
        initial: usize,
    },
}

impl FanoutPolicy {
    /// Wave size for retry round `retry` (0 = the initial announcement).
    /// `Flood` always covers everything; `Adaptive` doubles per round and
    /// goes all-in on the final round before [`MAX_ANN_RETRIES`] ends the
    /// chain.
    fn wave(&self, retry: u32, remaining: usize) -> usize {
        match *self {
            FanoutPolicy::Flood => remaining,
            FanoutPolicy::Adaptive { initial } => {
                if retry + 1 >= MAX_ANN_RETRIES {
                    remaining
                } else {
                    initial.max(1).saturating_mul(1 << retry.min(16)).min(remaining)
                }
            }
        }
    }
}

/// SplitMix64 finalizer used to rotate adaptive fan-out waves — a pure
/// function of `(peer, block)`, never a shared RNG, so wave selection
/// cannot perturb thread-count determinism.
fn fanout_mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A simulated peer.
pub struct Peer {
    /// This peer's ID.
    pub id: PeerId,
    /// Relay protocol spoken.
    pub protocol: RelayProtocol,
    /// Local transaction pool.
    pub mempool: Mempool,
    /// Honest or adversarial serving behavior.
    pub behavior: Behavior,
    /// §6.2 caps applied to every inbound message.
    pub caps: MessageCaps,
    /// Per-peer resource caps (queue depth, sessions, bodies, …).
    pub limits: ResourceLimits,
    blocks: HashMap<Digest, Block>,
    sessions: HashMap<Digest, RxSession>,
    seen_inv: HashSet<Digest>,
    /// Transaction IDs already announced/seen (loose-tx relay, §2.2).
    seen_tx_inv: HashSet<TxId>,
    /// Neighbors we announced a block to that have not yet asked for it
    /// (or shown they hold it); re-inv'd on a bounded backoff timer.
    /// `Vec` keeps iteration order deterministic.
    pending_announcements: HashMap<Digest, Vec<PeerId>>,
    /// Accumulated misbehavior per remote peer.
    misbehavior: HashMap<PeerId, u32>,
    banned: HashSet<PeerId>,
    /// Adversarial decision counter (deterministic mangling stream).
    adv_nonce: u64,
    /// Encode-once relay cache (None = per-receiver encoding, the seed
    /// behavior). Volatile: a crash/restore cycle restarts it empty.
    cache: Option<EncodeCache>,
    /// Whether this peer's recovery ladder streams rateless cells instead
    /// of inflated Graphene retries (off = the seed ladder).
    rateless: bool,
    /// Adaptive failure detection: RTO-derived timers, hedged fetches and
    /// the per-peer circuit breaker (off = the seed's fixed 2 s timer).
    adaptive: bool,
    /// Simulated now, set by the network before each handle call (only
    /// consumed by the adaptive machinery; zero otherwise).
    now: SimTime,
    /// Per-server smoothed RTT estimates (adaptive only; volatile).
    rtt: RttTable,
    /// Circuit breaker over non-attributable failures (adaptive only;
    /// entries volatile, lifetime counters kept for metrics).
    health: HealthTracker,
    /// In-flight request stamps: (block, server) → send time. Karn's
    /// rule: a stamp consumed by a timeout never yields an RTT sample.
    req_sent: HashMap<(Digest, PeerId), SimTime>,
    /// Lifetime hedged-fetch counters (issued / won / wasted).
    hedges_issued: u64,
    hedges_won: u64,
    hedges_wasted: u64,
    /// Block-announcement fan-out policy (flood = the seed behavior).
    fanout: FanoutPolicy,
    /// Bounded inbound frame queue: (sender, decoded message, frame bytes).
    inbox: VecDeque<(PeerId, Message, usize)>,
    /// Bytes currently queued in `inbox`.
    inbox_bytes: u64,
    /// Lifetime count of shed inbound frames.
    shed_frames: u64,
    /// High-water mark of accounted memory.
    hwm_bytes: u64,
}

/// Frames to transmit plus timers to arm and events for metrics.
pub struct Output {
    /// (destination, message) pairs to send.
    pub send: Vec<(PeerId, Message)>,
    /// (destination, pre-encoded frame) pairs to send verbatim — the
    /// encode-once relay cache's zero-copy path. Each entry is a complete
    /// wire frame (refcounted, shared with the cache), byte-identical to
    /// what encoding the equivalent [`Message`] would produce.
    pub send_frames: Vec<(PeerId, Bytes)>,
    /// (destination, message, extra delay) triples a tarpit adversary
    /// holds back before transmission: the network dispatches them like
    /// `send` but adds the delay to the scheduled delivery time.
    pub send_delayed: Vec<(PeerId, Message, SimTime)>,
    /// Retry timers to arm: (block, timer epoch).
    pub timers: Vec<(Digest, u32)>,
    /// Set when this peer just completed a block (for metrics).
    pub completed_block: Option<Digest>,
    /// Peers newly banned while handling this input.
    pub banned: Vec<PeerId>,
    /// Sessions that switched to an alternate server.
    pub failovers: u32,
    /// Ladder-rung escalations performed.
    pub escalations: u32,
}

impl Output {
    fn none() -> Output {
        Output {
            send: Vec::new(),
            send_frames: Vec::new(),
            send_delayed: Vec::new(),
            timers: Vec::new(),
            completed_block: None,
            banned: Vec::new(),
            failovers: 0,
            escalations: 0,
        }
    }

    fn absorb(&mut self, other: Output) {
        self.send.extend(other.send);
        self.send_frames.extend(other.send_frames);
        self.send_delayed.extend(other.send_delayed);
        self.timers.extend(other.timers);
        self.completed_block = self.completed_block.or(other.completed_block);
        self.banned.extend(other.banned);
        self.failovers += other.failovers;
        self.escalations += other.escalations;
    }
}

impl Peer {
    /// Create a peer.
    pub fn new(id: PeerId, protocol: RelayProtocol, mempool: Mempool) -> Peer {
        Peer {
            id,
            protocol,
            mempool,
            behavior: Behavior::Honest,
            caps: MessageCaps::default(),
            limits: ResourceLimits::default(),
            blocks: HashMap::new(),
            sessions: HashMap::new(),
            seen_inv: HashSet::new(),
            seen_tx_inv: HashSet::new(),
            pending_announcements: HashMap::new(),
            misbehavior: HashMap::new(),
            banned: HashSet::new(),
            adv_nonce: 0,
            cache: None,
            rateless: false,
            adaptive: false,
            now: SimTime::ZERO,
            rtt: RttTable::new(MAX_RTT_ENTRIES),
            health: HealthTracker::new(MAX_HEALTH_ENTRIES),
            req_sent: HashMap::new(),
            hedges_issued: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            fanout: FanoutPolicy::Flood,
            inbox: VecDeque::new(),
            inbox_bytes: 0,
            shed_frames: 0,
            hwm_bytes: 0,
        }
    }

    /// Does this peer hold `block_id`?
    pub fn has_block(&self, block_id: &Digest) -> bool {
        self.blocks.contains_key(block_id)
    }

    /// Fetch a held block.
    pub fn block(&self, block_id: &Digest) -> Option<&Block> {
        self.blocks.get(block_id)
    }

    /// Has this peer banned `peer`?
    pub fn is_banned(&self, peer: PeerId) -> bool {
        self.banned.contains(&peer)
    }

    /// Accumulated misbehavior score for `peer`.
    pub fn misbehavior_score(&self, peer: PeerId) -> u32 {
        self.misbehavior.get(&peer).copied().unwrap_or(0)
    }

    /// Current ladder rung of the session for `block_id`, if one is open.
    pub fn session_rung(&self, block_id: &Digest) -> Option<Rung> {
        self.sessions.get(block_id).map(|s| s.rung)
    }

    /// Number of open receive sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of blocks with re-announcement timers pending.
    pub fn pending_announcement_count(&self) -> usize {
        self.pending_announcements.len()
    }

    /// Number of remote peers with a tracked misbehavior score.
    pub fn misbehavior_entries(&self) -> usize {
        self.misbehavior.len()
    }

    /// Announced peer list for `block_id` awaiting acknowledgement (test
    /// and invariant-checking hook).
    pub fn pending_announcement(&self, block_id: &Digest) -> Option<&[PeerId]> {
        self.pending_announcements.get(block_id).map(|v| v.as_slice())
    }

    /// Turn on the encode-once relay cache, budgeted at
    /// [`ResourceLimits::max_encode_cache_bytes`]. Off by default (the
    /// seed's per-receiver encoding); relay-node experiments opt in.
    pub fn enable_encode_cache(&mut self) {
        self.cache = Some(EncodeCache::new(self.limits.max_encode_cache_bytes));
    }

    /// Replace the inflated-retry rung with the rateless coded-cell
    /// stream: the "no retry cliff" ladder. Off by default (the seed
    /// ladder); rateless sweeps opt in.
    pub fn enable_rateless(&mut self) {
        self.rateless = true;
    }

    /// Whether the rateless rung is enabled.
    pub fn rateless_enabled(&self) -> bool {
        self.rateless
    }

    /// Set the block-announcement fan-out policy. The default
    /// ([`FanoutPolicy::Flood`]) is the seed behavior; internet-scale
    /// sweeps opt into [`FanoutPolicy::Adaptive`].
    pub fn set_fanout(&mut self, policy: FanoutPolicy) {
        self.fanout = policy;
    }

    /// Frames currently queued in the bounded inbox (mirrored by the
    /// network's SoA arena so the dispatch loop can skip spurious drains
    /// without touching this struct).
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Turn on adaptive failure detection: RTO-derived retry timers from
    /// per-server RTT estimates, hedged fetches when the timer fires with
    /// an alternate announcer available, and circuit-breaker-steered
    /// server selection. Off by default (the seed's fixed 2 s timer);
    /// latency sweeps opt in.
    pub fn enable_adaptive(&mut self) {
        self.adaptive = true;
    }

    /// Whether adaptive failure detection is enabled.
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive
    }

    /// Advance this peer's view of simulated time. The network calls this
    /// before dispatching each message or timeout so RTT samples and
    /// breaker cool-downs read a consistent clock.
    pub fn set_clock(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The RTO-derived first-attempt timeout for `block_id`'s current
    /// server, or `None` when adaptive detection is off (or no session is
    /// open) — the network then falls back to the fixed [`crate::backoff::BASE`].
    pub fn rto_hint(&self, block_id: &Digest) -> Option<SimTime> {
        if !self.adaptive {
            return None;
        }
        self.sessions.get(block_id).map(|s| self.rtt.rto(s.server))
    }

    /// The RTT estimate held against `server`, if any (test/metrics hook).
    pub fn rtt_estimate(&self, server: PeerId) -> Option<RttEstimate> {
        self.rtt.estimate(server)
    }

    /// The breaker state of `server` at this peer's current clock.
    pub fn breaker_state(&self, server: PeerId) -> BreakerState {
        self.health.state(server, self.now)
    }

    /// Lifetime hedged-fetch counters: (issued, won, wasted).
    pub fn hedge_stats(&self) -> (u64, u64, u64) {
        (self.hedges_issued, self.hedges_won, self.hedges_wasted)
    }

    /// Lifetime circuit-breaker counters: (trips, half-open probes).
    pub fn breaker_stats(&self) -> (u64, u64) {
        (self.health.trips(), self.health.probes())
    }

    /// Effectiveness counters of the relay cache, if enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(EncodeCache::stats)
    }

    /// The relay cache itself, if enabled (test and assertion hook).
    pub fn encode_cache(&self) -> Option<&EncodeCache> {
        self.cache.as_ref()
    }

    /// Current resource usage, for metrics and cap assertions.
    pub fn accounting(&self) -> ResourceAccounting {
        ResourceAccounting {
            queue_frames: self.inbox.len(),
            queue_bytes: self.inbox_bytes,
            sessions: self.sessions.len(),
            body_bytes: self.sessions.values().map(|s| s.body_bytes).sum(),
            pending_announcements: self.pending_announcements.len(),
            encode_cache_bytes: self.cache.as_ref().map_or(0, EncodeCache::used_bytes),
            rateless_state_bytes: self
                .sessions
                .values()
                .map(|s| match &s.phase {
                    RxPhase::Rateless { decoder, .. } => decoder.state_bytes(),
                    _ => 0,
                })
                .sum(),
            tracker_bytes: (self.rtt.len() + self.health.len() + self.req_sent.len()) as u64
                * TRACKER_ENTRY_BYTES,
            hwm_bytes: self.hwm_bytes,
            shed_frames: self.shed_frames,
        }
    }

    /// Fold the current accounted total into the high-water mark.
    fn note_usage(&mut self) {
        let mut acct = self.accounting();
        acct.hwm_bytes = 0;
        self.hwm_bytes = self.hwm_bytes.max(acct.accounted_bytes());
    }

    // --- Bounded inbound queue --------------------------------------------

    /// Load-shedding class of `msg` given this peer's open sessions.
    fn classify(&self, msg: &Message) -> FrameClass {
        match msg {
            Message::Inv(_) | Message::TxInv(_) => FrameClass::Announcement,
            Message::GrapheneBlock(m) => self.recovery_class(&m.header),
            Message::CmpctBlock(m) => self.recovery_class(&m.header),
            Message::XthinBlock(m) => self.recovery_class(&m.header),
            Message::FullBlock(m) => self.recovery_class(&m.header),
            Message::GrapheneRecovery(m) => self.recovery_class_id(&m.block_id),
            Message::BlockTxn(m) => self.recovery_class_id(&m.block_id),
            // Cell windows are droppable by design: the stream is
            // deterministic and the session's timer re-requests the same
            // window, so under pressure they shed with the announcements
            // rather than crowding out non-replayable recovery frames.
            Message::RatelessCells(_) => FrameClass::Announcement,
            _ => FrameClass::Other,
        }
    }

    fn recovery_class(&self, header: &Header) -> FrameClass {
        self.recovery_class_id(&graphene_hashes::sha256d(&header.to_bytes()))
    }

    fn recovery_class_id(&self, block_id: &Digest) -> FrameClass {
        if self.sessions.contains_key(block_id) {
            FrameClass::ActiveRecovery
        } else {
            FrameClass::Other
        }
    }

    /// Append a decoded frame to the bounded inbound queue, shedding under
    /// pressure: oldest announcement-class frames first, then oldest
    /// `Other` frames; an active session's recovery frames are never shed.
    /// Returns the number of frames shed (for metrics).
    pub fn enqueue(&mut self, from: PeerId, msg: Message, bytes: usize) -> u64 {
        let mut shed = 0u64;
        self.inbox.push_back((from, msg, bytes));
        self.inbox_bytes += bytes as u64;
        while self.inbox.len() > self.limits.max_queue_frames
            || self.inbox_bytes > self.limits.max_queue_bytes
        {
            let victim = self
                .inbox
                .iter()
                .position(|(_, m, _)| self.classify(m) == FrameClass::Announcement)
                .or_else(|| {
                    self.inbox.iter().position(|(_, m, _)| self.classify(m) == FrameClass::Other)
                });
            let Some(idx) = victim else {
                // Everything queued (including the newcomer) is protected
                // recovery traffic; the caps are sized so an honest load
                // never gets here, but a hard cap must hold regardless —
                // drop the newest arrival.
                if let Some((_, _, b)) = self.inbox.pop_back() {
                    self.inbox_bytes -= b as u64;
                    shed += 1;
                }
                break;
            };
            if let Some((_, _, b)) = self.inbox.remove(idx) {
                self.inbox_bytes -= b as u64;
                shed += 1;
            }
        }
        self.shed_frames += shed;
        self.note_usage();
        shed
    }

    /// Pop the oldest queued frame for processing.
    pub fn dequeue(&mut self) -> Option<(PeerId, Message, usize)> {
        let (from, msg, bytes) = self.inbox.pop_front()?;
        self.inbox_bytes -= bytes as u64;
        Some((from, msg, bytes))
    }

    /// Frames currently queued.
    pub fn queued_frames(&self) -> usize {
        self.inbox.len()
    }

    // --- Crash/restart ----------------------------------------------------

    /// Capture the durable state a real node persists: mempool and
    /// accepted blocks. Everything else — in-flight sessions, queued
    /// frames, announcement bookkeeping, misbehavior scores — is volatile
    /// and lost in a crash.
    pub fn snapshot(&self) -> NodeSnapshot {
        let mut blocks: Vec<Block> = self.blocks.values().cloned().collect();
        blocks.sort_by_key(|b| b.id());
        NodeSnapshot { mempool: self.mempool.clone(), blocks }
    }

    /// Rebuild after a crash from the durable snapshot. Volatile state is
    /// re-derived where possible (`seen_inv` from held blocks, tx-inv
    /// suppression from the mempool) and cleared otherwise; sessions are
    /// re-established through the ordinary re-announcement path when a
    /// neighbor [`handshake`](Self::handshake)s or re-invs.
    pub fn restore(&mut self, snapshot: NodeSnapshot) {
        self.mempool = snapshot.mempool;
        self.blocks = snapshot.blocks.into_iter().map(|b| (b.id(), b)).collect();
        self.sessions.clear();
        self.seen_inv = self.blocks.keys().copied().collect();
        self.seen_tx_inv = self.mempool.iter().map(|tx| *tx.id()).collect();
        self.pending_announcements.clear();
        self.misbehavior.clear();
        self.banned.clear();
        self.inbox.clear();
        self.inbox_bytes = 0;
        // Failure-detector state is volatile too: a restarted node
        // re-learns RTTs and peer health from scratch.
        self.req_sent.clear();
        self.rtt.clear();
        self.health.clear();
        // The relay cache is process memory, deliberately outside
        // `NodeSnapshot`: a restarted node re-encodes on demand rather
        // than trusting frames from before the crash.
        if self.cache.is_some() {
            self.enable_encode_cache();
        }
    }

    /// Reconnect handshake with `neighbor`: announce every held block (a
    /// compressed model of the header/inv exchange real nodes perform on
    /// connect). The bounded re-announcement timer backs each `Inv`, so a
    /// neighbor that lost the block mid-crash re-learns it even across
    /// further frame loss.
    pub fn handshake(&mut self, neighbor: PeerId) -> Output {
        let mut out = Output::none();
        if self.banned.contains(&neighbor) {
            return out;
        }
        let mut held: Vec<Digest> = self.blocks.keys().copied().collect();
        held.sort();
        for block_id in held {
            self.announce(block_id, &[neighbor], &mut out);
        }
        self.note_usage();
        out
    }

    /// Is a timer with epoch `attempt` for `block_id` still live? The
    /// network drops stale timers on pop instead of dispatching no-ops.
    pub fn timer_current(&self, block_id: &Digest, attempt: u32) -> bool {
        if attempt & ANN_FLAG != 0 {
            self.pending_announcements.contains_key(block_id)
        } else {
            self.sessions.get(block_id).is_some_and(|s| s.attempt == attempt)
        }
    }

    /// Give this peer a block directly (the origin of a propagation run)
    /// and announce it to `neighbors`.
    pub fn originate(&mut self, block: Block, neighbors: &[PeerId]) -> Output {
        let id = block.id();
        self.seen_inv.insert(id);
        self.mempool.confirm(&block.ids());
        self.blocks.insert(id, block);
        let mut out = Output::none();
        self.announce(id, neighbors, &mut out);
        out
    }

    /// Send `Inv`s for `block_id` to `neighbors` and arm the bounded
    /// re-announcement timer guarding against lost announcement frames.
    /// Deduped on insert (a re-announcement of the same block to the same
    /// neighbor must not double-track it) and capped: past
    /// [`ResourceLimits::max_pending_announcements`] the `Inv`s still go
    /// out but un-acknowledged neighbors are not re-inv'd.
    ///
    /// Under [`FanoutPolicy::Flood`] (the default) every neighbor gets an
    /// `Inv` now. Under [`FanoutPolicy::Adaptive`] only a first wave
    /// does — rotated deterministically by `(peer, block)` so different
    /// blocks from the same hub fan toward different neighbors — and
    /// [`announce_timeout`](Self::announce_timeout) escalates from there.
    fn announce(&mut self, block_id: Digest, neighbors: &[PeerId], out: &mut Output) {
        if neighbors.is_empty() {
            return;
        }
        if self.fanout == FanoutPolicy::Flood {
            for &n in neighbors {
                out.send.push((n, Message::Inv(InvMsg { block_id })));
            }
            if let Some(pending) = self.pending_announcements.get_mut(&block_id) {
                // Timer chain already armed; just merge the targets.
                for &n in neighbors {
                    if !pending.contains(&n) {
                        pending.push(n);
                    }
                }
                return;
            }
            if self.pending_announcements.len() >= self.limits.max_pending_announcements {
                return;
            }
            let mut targets: Vec<PeerId> = Vec::with_capacity(neighbors.len());
            for &n in neighbors {
                if !targets.contains(&n) {
                    targets.push(n);
                }
            }
            self.pending_announcements.insert(block_id, targets);
            out.timers.push((block_id, ANN_FLAG));
            return;
        }
        // Adaptive fan-out: track every neighbor as pending (an un-inv'd
        // neighbor is "stalled by construction" and picked up by a later
        // wave), but only inv the first wave now. The rotation is a pure
        // function of (peer, block) — no shared RNG, so runs stay
        // byte-identical at any thread count.
        if let Some(pending) = self.pending_announcements.get_mut(&block_id) {
            let merge_from = pending.len();
            for &n in neighbors {
                if !pending.contains(&n) {
                    pending.push(n);
                }
            }
            let wave = self.fanout.wave(0, pending.len() - merge_from);
            for &n in pending[merge_from..].iter().take(wave) {
                out.send.push((n, Message::Inv(InvMsg { block_id })));
            }
            return;
        }
        let mut targets: Vec<PeerId> = Vec::with_capacity(neighbors.len());
        for &n in neighbors {
            if !targets.contains(&n) {
                targets.push(n);
            }
        }
        if self.pending_announcements.len() >= self.limits.max_pending_announcements {
            // No tracking slot means no escalation timer: flood now so
            // nobody is left permanently un-announced.
            for &n in &targets {
                out.send.push((n, Message::Inv(InvMsg { block_id })));
            }
            return;
        }
        let rot = (fanout_mix(self.id.0 as u64 ^ block_id.low_u64()) as usize) % targets.len();
        targets.rotate_left(rot);
        let wave = self.fanout.wave(0, targets.len());
        for &n in targets.iter().take(wave) {
            out.send.push((n, Message::Inv(InvMsg { block_id })));
        }
        self.pending_announcements.insert(block_id, targets);
        out.timers.push((block_id, ANN_FLAG));
    }

    /// Any block-specific message from `from` proves the announcement got
    /// through (they are requesting it, or they hold it themselves).
    fn acknowledge_announcement(&mut self, from: PeerId, msg: &Message) {
        let block_id = match msg {
            Message::Inv(m) => m.block_id,
            Message::GetData(m) => m.block_id,
            Message::GrapheneRequest(m) => m.block_id,
            Message::GetGrapheneTxn(m) => m.block_id,
            Message::GetGrapheneRetry(m) => m.block_id,
            Message::GetBlockTxn(m) => m.block_id,
            Message::XthinGetData(m) => m.block_id,
            Message::GetFullBlock(m) => m.block_id,
            Message::GetMoreCells(m) => m.block_id,
            _ => return,
        };
        if let Some(pending) = self.pending_announcements.get_mut(&block_id) {
            pending.retain(|p| *p != from);
            if pending.is_empty() {
                self.pending_announcements.remove(&block_id);
            }
        }
    }

    /// Handle one delivered message.
    pub fn handle(&mut self, from: PeerId, msg: Message, neighbors: &[PeerId]) -> Output {
        if self.banned.contains(&from) {
            return Output::none();
        }
        self.acknowledge_announcement(from, &msg);
        if self.caps.validate(&msg).is_err() {
            // §6.2: a cap violation is a provable offence — honest encodes
            // never approach the limits and the wire layer's exact-length
            // checks keep corruption from forging one.
            return self.punish(from, MALFORMED_SCORE);
        }
        self.observe_response(from, &msg);
        let out = match msg {
            Message::Inv(m) => self.on_inv(from, m),
            Message::GetData(m) => self.on_getdata(from, m),
            Message::GrapheneBlock(m) => self.on_graphene_block(from, m, neighbors),
            Message::GrapheneRequest(m) => self.on_graphene_request(from, m),
            Message::GrapheneRecovery(m) => self.on_graphene_recovery(from, m, neighbors),
            Message::GetGrapheneTxn(m) => self.on_get_graphene_txn(from, m),
            Message::GetGrapheneRetry(m) => self.on_get_graphene_retry(from, m),
            Message::RatelessCells(m) => self.on_rateless_cells(from, m, neighbors),
            Message::GetMoreCells(m) => self.on_get_more_cells(from, m),
            Message::CmpctBlock(m) => self.on_cmpct_block(from, m, neighbors),
            Message::GetBlockTxn(m) => self.on_get_block_txn(from, m),
            Message::BlockTxn(m) => self.on_block_txn(from, m, neighbors),
            Message::XthinGetData(m) => self.on_xthin_getdata(from, m),
            Message::XthinBlock(m) => self.on_xthin_block(from, m, neighbors),
            Message::GetFullBlock(m) => self.on_get_full_block(from, m),
            Message::FullBlock(m) => self.on_full_block(from, m, neighbors),
            Message::TxInv(m) => self.on_tx_inv(from, m),
            Message::GetTxns(m) => self.on_get_txns(from, m),
            Message::Txns(m) => self.on_txns(m, neighbors),
        };
        self.note_requests(&out);
        let out = self.mangle_output(out);
        self.note_usage();
        out
    }

    // --- Adaptive failure detection ---------------------------------------
    // (block-id classifiers for the request/response pairing live at the
    // bottom of this file: `request_block_id` / `response_block_id`.)

    /// If `msg` answers a stamped in-flight request, fold the measured
    /// round trip into the RTT table and close `from`'s breaker circuit.
    /// Karn's rule makes this safe: [`escalate`](Self::escalate) removes
    /// the stamp on timeout, so a reply that arrives *after* its timer
    /// fired matches nothing — it neither pollutes the RTT estimate with
    /// a retransmission-ambiguous sample nor resets the failure streak.
    fn observe_response(&mut self, from: PeerId, msg: &Message) {
        if !self.adaptive {
            return;
        }
        let Some(block_id) = response_block_id(msg) else {
            return;
        };
        if let Some(t0) = self.req_sent.remove(&(block_id, from)) {
            self.rtt.observe(from, self.now - t0);
            self.health.note_success(from);
        }
    }

    /// Stamp every outgoing block request in `out` with the current clock
    /// so the matching response yields an RTT sample. Stamps for sessions
    /// that no longer exist are swept, and the table is capped at twice
    /// the session limit with deterministic oldest-first eviction.
    fn note_requests(&mut self, out: &Output) {
        if !self.adaptive {
            return;
        }
        let sessions = &self.sessions;
        self.req_sent.retain(|(block_id, _), _| sessions.contains_key(block_id));
        for (to, msg) in &out.send {
            if let Some(block_id) = request_block_id(msg) {
                if self.sessions.contains_key(&block_id) {
                    let cap = 2 * self.limits.max_sessions;
                    if self.req_sent.len() >= cap && !self.req_sent.contains_key(&(block_id, *to)) {
                        if let Some(victim) = self
                            .req_sent
                            .iter()
                            .map(|(&(d, p), &t)| (t, d, p.0, (d, p)))
                            .min()
                            .map(|(_, _, _, k)| k)
                        {
                            self.req_sent.remove(&victim);
                        }
                    }
                    self.req_sent.insert((block_id, *to), self.now);
                }
            }
        }
    }

    /// Pick the best hedge target for `block_id`'s session: the alternate
    /// announcer with the healthiest breaker state (closed < half-open <
    /// open, ties broken by announcement order), skipping banned peers and
    /// the current server. Marks the session hedged and counts a probe
    /// when the pick was half-open.
    fn pick_hedge(&mut self, block_id: &Digest) -> Option<PeerId> {
        let (server, alternates) = {
            let s = self.sessions.get(block_id)?;
            if s.hedge.is_some() {
                return None; // one hedge in flight is enough
            }
            (s.server, s.alternates.clone())
        };
        let mut best: Option<(u8, usize, PeerId)> = None;
        for (idx, &cand) in alternates.iter().enumerate() {
            if cand == server || self.banned.contains(&cand) {
                continue;
            }
            let rank = match self.health.state(cand, self.now) {
                BreakerState::Closed => 0u8,
                BreakerState::HalfOpen => 1,
                BreakerState::Open => 2,
            };
            if best.is_none_or(|(r, i, _)| (rank, idx) < (r, i)) {
                best = Some((rank, idx, cand));
            }
        }
        let (rank, _, pick) = best?;
        if rank == 1 {
            self.health.note_probe(pick);
        }
        if let Some(s) = self.sessions.get_mut(block_id) {
            s.hedge = Some(pick);
        }
        Some(pick)
    }

    /// Apply adversarial mangling to outgoing frames, if configured. A
    /// tarpit adversary reroutes surviving responses through
    /// `send_delayed`, holding each back just long enough to look slow
    /// without ever provably misbehaving.
    fn mangle_output(&mut self, mut out: Output) -> Output {
        if let Behavior::Adversarial(cfg) = &self.behavior {
            let mut kept = Vec::with_capacity(out.send.len());
            let mut delayed = Vec::new();
            for (to, msg) in out.send {
                let nonce = self.adv_nonce;
                self.adv_nonce += 1;
                if let Some(m) = cfg.mangle(nonce, msg) {
                    if let Some(extra) = cfg.tarpit_delay(nonce, &m) {
                        delayed.push((to, m, extra));
                    } else {
                        kept.push((to, m));
                    }
                }
            }
            out.send = kept;
            out.send_delayed.extend(delayed);
        }
        out
    }

    /// Inject freshly authored transactions at this peer (the origin of
    /// loose-transaction gossip) and announce them to `neighbors`.
    pub fn originate_txns(&mut self, txns: Vec<Transaction>, neighbors: &[PeerId]) -> Output {
        let mut fresh = Vec::new();
        for tx in txns {
            if self.seen_tx_inv.insert(*tx.id()) {
                fresh.push(*tx.id());
            }
            self.mempool.insert(tx);
        }
        let mut out = Output::none();
        if !fresh.is_empty() {
            for &n in neighbors {
                out.send.push((n, Message::TxInv(TxInvMsg { txids: fresh.clone() })));
            }
        }
        out
    }

    fn on_tx_inv(&mut self, from: PeerId, m: TxInvMsg) -> Output {
        // Request every announced transaction we do not hold yet, even if a
        // previous announcement was already seen: on lossy links the earlier
        // getdata/tx exchange may have been dropped, and a later inv from
        // another neighbor is the only recovery path. `seen_tx_inv` still
        // suppresses re-relaying, so this cannot loop.
        let wanted: Vec<TxId> = m
            .txids
            .into_iter()
            .filter(|id| {
                self.seen_tx_inv.insert(*id);
                !self.mempool.contains(id)
            })
            .collect();
        let mut out = Output::none();
        if !wanted.is_empty() {
            out.send.push((from, Message::GetTxns(GetTxnsMsg { txids: wanted })));
        }
        out
    }

    fn on_get_txns(&mut self, from: PeerId, m: GetTxnsMsg) -> Output {
        let txns: Vec<Transaction> =
            m.txids.iter().filter_map(|id| self.mempool.get(id).cloned()).collect();
        let mut out = Output::none();
        if !txns.is_empty() {
            out.send.push((from, Message::Txns(TxnsMsg { txns })));
        }
        out
    }

    fn on_txns(&mut self, m: TxnsMsg, neighbors: &[PeerId]) -> Output {
        let mut fresh = Vec::new();
        for tx in m.txns {
            if !self.mempool.contains(tx.id()) {
                fresh.push(*tx.id());
                self.seen_tx_inv.insert(*tx.id());
                self.mempool.insert(tx);
            }
        }
        let mut out = Output::none();
        if !fresh.is_empty() {
            // Relay onward (the announce-to-all, request-if-new gossip of §2.2).
            for &n in neighbors {
                out.send.push((n, Message::TxInv(TxInvMsg { txids: fresh.clone() })));
            }
        }
        out
    }

    /// Handle a retry timer. `attempt` is the epoch the timer guarded; a
    /// session that advanced meanwhile ignores the stale timer.
    pub fn handle_timeout(&mut self, block_id: Digest, attempt: u32) -> Output {
        if attempt & ANN_FLAG != 0 {
            let out = self.announce_timeout(block_id, attempt & !ANN_FLAG);
            let out = self.mangle_output(out);
            self.note_usage();
            return out;
        }
        let Some(session) = self.sessions.get(&block_id) else {
            return Output::none(); // completed meanwhile
        };
        if session.attempt != attempt {
            return Output::none(); // session advanced; stale timer
        }
        let out = self.escalate(block_id);
        let out = self.mangle_output(out);
        self.note_usage();
        out
    }

    /// Re-announce to neighbors that never reacted to our `Inv`. Bounded:
    /// a neighbor that got the block elsewhere never answers, so after
    /// [`MAX_ANN_RETRIES`] rounds the remainder is assumed served.
    ///
    /// Under [`FanoutPolicy::Adaptive`] each stalled round doubles the
    /// wave ([`FanoutPolicy::wave`]) and the final round re-invs every
    /// remaining neighbor, so delivery never depends on the small first
    /// wave having been lucky.
    fn announce_timeout(&mut self, block_id: Digest, retry: u32) -> Output {
        let banned = &self.banned;
        let Some(pending) = self.pending_announcements.get_mut(&block_id) else {
            return Output::none(); // everyone acknowledged
        };
        pending.retain(|p| !banned.contains(p));
        if pending.is_empty() || retry >= MAX_ANN_RETRIES {
            self.pending_announcements.remove(&block_id);
            return Output::none();
        }
        let mut out = Output::none();
        let wave = self.fanout.wave(retry + 1, pending.len());
        for &n in pending.iter().take(wave) {
            out.send.push((n, Message::Inv(InvMsg { block_id })));
        }
        out.timers.push((block_id, (retry + 1) | ANN_FLAG));
        out
    }

    /// Climb one rung of the recovery ladder (or retry within the current
    /// rung while its budget lasts). Exhausting the ladder fails over.
    fn escalate(&mut self, block_id: Digest) -> Output {
        if self.adaptive {
            // The timer fired: charge a non-attributable failure to the
            // current server and drop its in-flight stamp (Karn's rule —
            // a reply arriving after this point must not become an RTT
            // sample or reset the failure streak).
            if let Some(server) = self.sessions.get(&block_id).map(|s| s.server) {
                self.health.note_failure(server, self.now);
                self.req_sent.remove(&(block_id, server));
            }
        }
        let is_graphene = matches!(self.protocol, RelayProtocol::Graphene(_));
        let rateless_on = self.rateless;
        let mut escalated = false;
        // `(from_index, count)` of the cell window to (re-)request when the
        // session lands on the rateless rung.
        let mut cell_window: Option<(u64, u32)> = None;
        let (server, epoch, rung, retries) = {
            let Some(s) = self.sessions.get_mut(&block_id) else {
                return Output::none();
            };
            s.bump_epoch();
            match s.rung {
                Rung::Graphene => {
                    let has_candidates = matches!(s.phase, RxPhase::GrapheneP2 { .. });
                    if is_graphene && rateless_on && has_candidates {
                        // The "no retry cliff" path: instead of re-shipping
                        // whole inflated sketches, grow a coded-cell stream
                        // against the candidate set the failed attempt
                        // already built.
                        let RxPhase::GrapheneP2 { state, header, order_bytes, block_tx_count } =
                            std::mem::replace(&mut s.phase, RxPhase::Requested)
                        else {
                            unreachable!("phase checked above");
                        };
                        // Both the partial peel and the candidate-count gap
                        // lower-bound (and undercount) the difference; 3×
                        // covers the undercount plus the codec's ~1.35d
                        // overhead (same sizing as the core recovery rung).
                        let d_est = (state.partial_left.len() + state.partial_right.len())
                            .max(state.z.abs_diff(block_tx_count))
                            .max(4);
                        let batch = (3 * d_est).clamp(8, MAX_CELLS_PER_BATCH);
                        let decoder = RatelessDecoder::new(
                            rateless_salt(&block_id),
                            state.by_short.keys().copied(),
                        );
                        s.phase = RxPhase::Rateless {
                            by_short: state.by_short,
                            decoder: Box::new(decoder),
                            header,
                            order_bytes,
                        };
                        s.rung = Rung::Rateless;
                        s.retries = 0;
                        escalated = true;
                        cell_window = Some((0, batch as u32));
                    } else if is_graphene {
                        s.rung = Rung::GrapheneRetry;
                        s.retries = 1;
                        s.phase = RxPhase::Requested;
                        escalated = true;
                    } else if s.retries + 1 < MAX_ATTEMPTS {
                        s.retries += 1; // plain re-request
                        s.phase = RxPhase::Requested;
                    } else {
                        s.rung = Rung::FullBlock;
                        s.phase = RxPhase::Requested;
                        escalated = true;
                    }
                }
                Rung::GrapheneRetry => {
                    if s.retries < MAX_GRAPHENE_RETRIES {
                        s.retries += 1;
                    } else {
                        s.rung = Rung::ShortIdFetch;
                        escalated = true;
                    }
                    s.phase = RxPhase::Requested;
                }
                Rung::Rateless => {
                    // A timed-out (lost or shed) window, or an exhausted
                    // stream budget: re-request the pending window while
                    // batches remain, else fall through to short IDs.
                    if s.retries < MAX_RATELESS_BATCHES {
                        if let RxPhase::Rateless { decoder, .. } = &s.phase {
                            s.retries += 1;
                            cell_window =
                                Some((decoder.received(), decoder.suggested_batch() as u32));
                        } else {
                            // Decode state lost (e.g. mid-fetch timeout):
                            // nothing to grow, fall through.
                            s.rung = Rung::ShortIdFetch;
                            s.phase = RxPhase::Requested;
                            escalated = true;
                        }
                    } else {
                        s.rung = Rung::ShortIdFetch;
                        s.phase = RxPhase::Requested;
                        escalated = true;
                    }
                }
                Rung::ShortIdFetch => {
                    s.rung = Rung::FullBlock;
                    s.phase = RxPhase::Requested;
                    escalated = true;
                }
                Rung::FullBlock => {
                    // Ladder exhausted against this server: fail over.
                    return self.failover(block_id);
                }
            }
            (s.server, s.attempt, s.rung, s.retries)
        };
        let msg = match rung {
            Rung::Graphene => self.request_for(block_id),
            Rung::GrapheneRetry => Message::GetGrapheneRetry(GetGrapheneRetryMsg {
                block_id,
                mempool_count: self.mempool.len() as u64,
                attempt: retries,
            }),
            Rung::Rateless => {
                let (from_index, count) = cell_window.unwrap_or((0, 8));
                Message::GetMoreCells(GetMoreCellsMsg { block_id, from_index, count })
            }
            Rung::ShortIdFetch => self.shortid_request(block_id, 0.001),
            Rung::FullBlock => Message::GetFullBlock(GetFullBlockMsg { block_id }),
        };
        let mut out = Output::none();
        out.escalations = escalated as u32;
        // Hedged fetch: the timer said `server` is slow, but the session
        // has not failed over yet. Race a duplicate request against the
        // healthiest alternate announcer — first response wins, the
        // loser's late reply is discarded without punishment.
        if self.adaptive {
            if let Some(h) = self.pick_hedge(&block_id) {
                self.hedges_issued += 1;
                out.send.push((h, msg.clone()));
            }
        }
        out.send.push((server, msg));
        out.timers.push((block_id, epoch));
        out
    }

    /// Restart the session at rung 1 against the next non-banned alternate
    /// announcer (or, lacking one, re-request from the current server).
    /// Adaptive peers prefer the alternate whose breaker circuit is
    /// healthiest (closed < half-open < open, ties by announcement order);
    /// the fixed arm keeps the seed's first-non-banned pick.
    fn failover(&mut self, block_id: Digest) -> Output {
        // Pick the replacement server before borrowing the session
        // mutably: the breaker ranking reads `self.health`.
        let pick: Option<usize> = {
            let Some(s) = self.sessions.get(&block_id) else {
                return Output::none();
            };
            if self.adaptive {
                let mut best: Option<(u8, usize)> = None;
                for (idx, &cand) in s.alternates.iter().enumerate() {
                    if self.banned.contains(&cand) {
                        continue;
                    }
                    let rank = match self.health.state(cand, self.now) {
                        BreakerState::Closed => 0u8,
                        BreakerState::HalfOpen => 1,
                        BreakerState::Open => 2,
                    };
                    if best.is_none_or(|b| (rank, idx) < b) {
                        best = Some((rank, idx));
                    }
                }
                if let Some((rank, idx)) = best {
                    if rank == 1 {
                        let probed = s.alternates[idx];
                        self.health.note_probe(probed);
                    }
                    Some(idx)
                } else {
                    None
                }
            } else {
                // Seed behavior: first non-banned alternate in
                // announcement order. (Equivalent to the original
                // consuming scan — bans strip `alternates` eagerly, so
                // skipped-over banned entries cannot exist.)
                s.alternates.iter().position(|p| !self.banned.contains(p))
            }
        };
        let (server, epoch, switched) = {
            let Some(s) = self.sessions.get_mut(&block_id) else {
                return Output::none();
            };
            s.bump_epoch();
            s.cycles += 1;
            s.hedge = None;
            let switched = match pick {
                Some(idx) => {
                    let cand = s.alternates.remove(idx);
                    s.server = cand;
                    true
                }
                None => false,
            };
            if !switched && s.cycles >= MAX_LADDER_CYCLES {
                // Nobody else ever announced this block and the full ladder
                // failed twice against the only known server: give up. (A
                // block id from a corrupted announcement frame lands here —
                // no peer can serve it. A later genuine announcement simply
                // reopens a fresh session.)
                self.sessions.remove(&block_id);
                return Output::none();
            }
            s.rung = Rung::Graphene;
            s.retries = 0;
            s.phase = RxPhase::Requested;
            (s.server, s.attempt, switched)
        };
        let mut out = Output::none();
        out.failovers = switched as u32;
        out.send.push((server, self.request_for(block_id)));
        out.timers.push((block_id, epoch));
        out
    }

    /// Record misbehavior; at [`BAN_THRESHOLD`] ban the offender and fail
    /// over every session it was serving.
    fn punish(&mut self, offender: PeerId, score: u32) -> Output {
        let mut out = Output::none();
        if !self.misbehavior.contains_key(&offender)
            && self.misbehavior.len() >= self.limits.max_misbehavior_entries
        {
            // Tracking table full: evict the least-incriminated entry
            // (deterministically — min score, then min id — regardless of
            // map iteration order) to make room for the fresh offence.
            if let Some((&evict, _)) = self.misbehavior.iter().min_by_key(|(p, s)| (**s, p.0)) {
                self.misbehavior.remove(&evict);
            }
        }
        let total = self.misbehavior.entry(offender).or_insert(0);
        *total = total.saturating_add(score);
        if *total >= BAN_THRESHOLD && self.banned.insert(offender) {
            out.banned.push(offender);
            for s in self.sessions.values_mut() {
                s.alternates.retain(|p| *p != offender);
            }
            let affected: Vec<Digest> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.server == offender)
                .map(|(id, _)| *id)
                .collect();
            for id in affected {
                let o = self.failover(id);
                out.absorb(o);
            }
        }
        out
    }

    /// The protocol-appropriate initial block request.
    fn request_for(&self, block_id: Digest) -> Message {
        match &self.protocol {
            RelayProtocol::Xthin { filter_fpr } => self.shortid_request(block_id, *filter_fpr),
            _ => {
                Message::GetData(GetDataMsg { block_id, mempool_count: self.mempool.len() as u64 })
            }
        }
    }

    /// An xthin-style request: our whole mempool in a Bloom filter.
    fn shortid_request(&self, block_id: Digest, fpr: f64) -> Message {
        let mut filter =
            BloomFilter::new(self.mempool.len().max(1), fpr, block_id.low_u64() ^ 0x7874);
        let pool_ids: Vec<Digest> = self.mempool.iter().map(|tx| *tx.id()).collect();
        filter.insert_batch(&pool_ids);
        Message::XthinGetData(XthinGetDataMsg { block_id, mempool_filter: filter })
    }

    fn on_inv(&mut self, from: PeerId, m: InvMsg) -> Output {
        self.seen_inv.insert(m.block_id);
        if self.blocks.contains_key(&m.block_id) {
            return Output::none();
        }
        if let Some(s) = self.sessions.get_mut(&m.block_id) {
            // A concurrent announcement: remember the peer as a failover
            // candidate rather than opening a second session.
            if from != s.server && !s.alternates.contains(&from) && !self.banned.contains(&from) {
                s.alternates.push(from);
            }
            if self.banned.contains(&s.server) {
                // We were stuck on a banned server with nowhere to go; this
                // announcement is the way out.
                return self.failover(m.block_id);
            }
            return Output::none();
        }
        if self.banned.contains(&from) {
            return Output::none();
        }
        if self.sessions.len() >= self.limits.max_sessions {
            // At the session cap: ignore the announcement. The announcer's
            // bounded re-inv timer (or a reconnect handshake) offers the
            // block again once a slot frees.
            return Output::none();
        }
        self.sessions.insert(m.block_id, RxSession::new(from));
        let mut out = Output::none();
        out.send.push((from, self.request_for(m.block_id)));
        out.timers.push((m.block_id, 0));
        out
    }

    fn on_getdata(&mut self, from: PeerId, m: GetDataMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        match &self.protocol {
            RelayProtocol::Graphene(cfg) => match &self.cache {
                Some(cache) => {
                    // The relay-node path: serve (or populate) the canonical
                    // frame for this receiver's mempool-size bucket and ship
                    // the refcounted bytes verbatim.
                    let enc = protocol1::sender_encode_cached(
                        block,
                        m.mempool_count,
                        None,
                        cfg,
                        &RetryTweak::initial(cfg),
                        Some(cache),
                    );
                    out.send_frames.push((from, enc.frame));
                }
                None => {
                    let (msg, _) = protocol1::sender_encode(block, m.mempool_count, None, cfg);
                    out.send.push((from, Message::GrapheneBlock(msg)));
                }
            },
            RelayProtocol::CompactBlocks => {
                out.send.push((from, Message::CmpctBlock(build_cmpctblock(block))));
            }
            RelayProtocol::FullBlocks | RelayProtocol::Xthin { .. } => {
                // XThin requests arrive as XthinGetData instead; a plain
                // getdata gets the full block.
                Self::push_full_block(&self.cache, from, block, &mut out);
            }
        }
        out
    }

    /// Send the full block to `to`, through the relay cache's `FullBlock`
    /// variant when enabled (the ladder's terminal rung is the largest
    /// frame a relay node repeats, so it benefits most from encode-once).
    fn push_full_block(cache: &Option<EncodeCache>, to: PeerId, block: &Block, out: &mut Output) {
        if let Some(cache) = cache {
            let key = CacheKey::full_block(block.id());
            if let Some(frame) = cache.lookup(&key) {
                out.send_frames.push((to, frame));
                return;
            }
            let msg = Message::FullBlock(FullBlockMsg {
                header: *block.header(),
                txns: block.txns().to_vec(),
            });
            let frame = Bytes::from(msg.to_vec());
            cache.insert(key, frame.clone());
            out.send_frames.push((to, frame));
            return;
        }
        out.send.push((
            to,
            Message::FullBlock(FullBlockMsg {
                header: *block.header(),
                txns: block.txns().to_vec(),
            }),
        ));
    }

    // --- Graphene ---------------------------------------------------------

    fn on_graphene_block(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneBlockMsg,
        neighbors: &[PeerId],
    ) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
            return Output::none();
        };
        {
            let Some(session) = self.sessions.get_mut(&block_id) else {
                return Output::none();
            };
            let Some(outcome) = session.accept_from(from) else {
                return Output::none(); // unsolicited, or a hedge loser's late reply
            };
            match outcome {
                HedgeOutcome::Normal => {}
                HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
                HedgeOutcome::HedgeWon => self.hedges_won += 1,
            }
            for tx in &m.prefilled {
                session.add_body(&self.limits, tx);
            }
        }
        match protocol1::receiver_decode(&m, &self.mempool, &cfg) {
            Ok(ok) => self.complete_block(block_id, m.header, ok.ordered_ids, neighbors),
            Err((why, state)) => {
                if matches!(why, P1Failure::Malformed(_)) {
                    // §6.1: a provably hostile IBLT — ban and fail over.
                    return self.punish(from, MALFORMED_SCORE);
                }
                let (req, _) = protocol2::receiver_request(
                    &state,
                    block_id,
                    m.block_tx_count as usize,
                    self.mempool.len(),
                    &cfg,
                );
                let Some(session) = self.sessions.get_mut(&block_id) else {
                    return Output::none();
                };
                session.bump_epoch();
                session.phase = RxPhase::GrapheneP2 {
                    state: Box::new(state),
                    header: m.header,
                    order_bytes: m.order_bytes.clone(),
                    block_tx_count: m.block_tx_count as usize,
                };
                let attempt = session.attempt;
                let mut out = Output::none();
                out.send.push((from, Message::GrapheneRequest(req)));
                out.timers.push((block_id, attempt));
                out
            }
        }
    }

    fn on_graphene_request(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneRequestMsg,
    ) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let RelayProtocol::Graphene(cfg) = &self.protocol else {
            return Output::none();
        };
        // The sender does not re-learn m here; deployed graphene caches it.
        // Receiver-dependent (`R` differs per peer): always a cache bypass.
        let rec = protocol2::sender_respond_cached(
            block,
            &m,
            self.mempool.len().max(block.len()),
            cfg,
            self.cache.as_ref(),
        );
        let mut out = Output::none();
        out.send.push((from, Message::GrapheneRecovery(rec)));
        out
    }

    /// Serve a ladder rung 2 re-request: re-encode with Theorem 3's decayed
    /// β, an inflated IBLT, and a fresh salt.
    fn on_get_graphene_retry(&mut self, from: PeerId, m: GetGrapheneRetryMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        match &self.protocol {
            RelayProtocol::Graphene(cfg) => {
                // Deliberately cache-free: a retry exists to re-encode with
                // a *fresh* salt after a failed decode, so this handler
                // never consults the relay cache — serving the cached
                // attempt-0 frame would replay the very salts that just
                // failed. (`EncodeCache::cacheable` enforces the same rule
                // for anyone routing retries through the cached encoder.)
                if let Some(cache) = &self.cache {
                    cache.note_bypass();
                }
                let tweak = RetryTweak::for_attempt(cfg, m.attempt);
                let (msg, _) =
                    protocol1::sender_encode_retry(block, m.mempool_count, None, cfg, &tweak);
                out.send.push((from, Message::GrapheneBlock(msg)));
            }
            _ => {
                // A non-Graphene server cannot re-encode; answer with the
                // full block so the ladder still terminates.
                out.send.push((
                    from,
                    Message::FullBlock(FullBlockMsg {
                        header: *block.header(),
                        txns: block.txns().to_vec(),
                    }),
                ));
            }
        }
        out
    }

    fn on_graphene_recovery(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneRecoveryMsg,
        neighbors: &[PeerId],
    ) -> Output {
        let block_id = m.block_id;
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let Some(outcome) = session.accept_from(from) else {
            return Output::none(); // unsolicited, or a hedge loser's late reply
        };
        match outcome {
            HedgeOutcome::Normal => {}
            HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
            HedgeOutcome::HedgeWon => self.hedges_won += 1,
        }
        let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
            return Output::none();
        };
        for tx in &m.missing {
            session.add_body(&self.limits, tx);
        }
        let RxPhase::GrapheneP2 { state, header, order_bytes, .. } = &mut session.phase else {
            return Output::none();
        };
        let header = *header;
        let order_bytes = order_bytes.clone();
        match protocol2::receiver_complete(state, &m, header.merkle_root, &order_bytes, &cfg) {
            Ok(ok) => {
                if ok.needs_fetch.is_empty() {
                    let Some(ids) = ok.ordered_ids else {
                        return self.escalate(block_id);
                    };
                    self.complete_block(block_id, header, ids, neighbors)
                } else {
                    session.bump_epoch();
                    let attempt = session.attempt;
                    let needs = ok.needs_fetch.clone();
                    session.phase =
                        RxPhase::GrapheneFetch { resolved: ok.resolved, header, order_bytes };
                    let mut out = Output::none();
                    out.send.push((
                        from,
                        Message::GetGrapheneTxn(GetGrapheneTxnMsg { block_id, short_ids: needs }),
                    ));
                    out.timers.push((block_id, attempt));
                    out
                }
            }
            Err(e) => {
                if matches!(e, P2Failure::Malformed(_)) {
                    // Provably hostile (double-decode on the plain path).
                    return self.punish(from, MALFORMED_SCORE);
                }
                // Undecodable but not attributable: climb the ladder.
                self.escalate(block_id)
            }
        }
    }

    fn on_get_graphene_txn(&mut self, from: PeerId, m: GetGrapheneTxnMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let lookup: HashMap<u64, &Transaction> =
            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
        let txns: Vec<Transaction> =
            m.short_ids.iter().filter_map(|s| lookup.get(s).map(|tx| (*tx).clone())).collect();
        let mut out = Output::none();
        out.send.push((from, Message::BlockTxn(BlockTxnMsg { block_id: m.block_id, txns })));
        out
    }

    // --- Rateless rung ------------------------------------------------------

    /// Serve a coded-cell window request. Stateless on the sender: the
    /// stream is a deterministic function of `(block, salt)`, so any
    /// window is regenerated by replaying from index 0 — no per-receiver
    /// stream state to account, shed, or lose in a crash.
    fn on_get_more_cells(&mut self, from: PeerId, m: GetMoreCellsMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        match &self.protocol {
            RelayProtocol::Graphene(_) => {
                // Structurally cache-free: every request names a different
                // window (`from_index` advances), so a cached frame could
                // only ever replay a window the receiver already holds —
                // the same never-cache rule as the 0x14 retry rung
                // (`EncodeCache::cacheable_cells`). Count the bypass so
                // fan-out metrics stay honest.
                if let Some(cache) = &self.cache {
                    cache.note_bypass();
                }
                let salt = rateless_salt(&m.block_id);
                let mut stream =
                    CellStream::new(salt, block.txns().iter().map(|tx| short_id_8(tx.id())));
                stream.skip(m.from_index);
                let cells = stream.cells((m.count as usize).min(MAX_CELLS_PER_BATCH));
                out.send.push((
                    from,
                    Message::RatelessCells(RatelessCellsMsg {
                        block_id: m.block_id,
                        salt,
                        start_index: m.from_index,
                        cells,
                    }),
                ));
            }
            _ => {
                // A non-Graphene server cannot stream cells; answer with
                // the full block so the ladder still terminates.
                Self::push_full_block(&self.cache, from, block, &mut out);
            }
        }
        out
    }

    fn on_rateless_cells(
        &mut self,
        from: PeerId,
        m: RatelessCellsMsg,
        neighbors: &[PeerId],
    ) -> Output {
        let block_id = m.block_id;
        // The codec salt is a public function of the block ID: a frame
        // claiming any other salt is provably hostile, no session needed.
        if m.salt != rateless_salt(&block_id) {
            return self.punish(from, MALFORMED_SCORE);
        }
        let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
            return Output::none();
        };
        enum Step {
            Ignore,
            Hostile,
            FallThrough,
            Request { from_index: u64, count: u32, epoch: u32 },
            Fetch { needs: Vec<u64>, epoch: u32 },
            Done { ids: Vec<TxId>, header: Header },
        }
        let step = {
            let Some(session) = self.sessions.get_mut(&block_id) else {
                return Output::none();
            };
            let Some(outcome) = session.accept_from(from) else {
                return Output::none(); // unsolicited, or a hedge loser's late reply
            };
            match outcome {
                HedgeOutcome::Normal => {}
                HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
                HedgeOutcome::HedgeWon => self.hedges_won += 1,
            }
            let state_limit = self.limits.max_rateless_state_bytes;
            let RxPhase::Rateless { by_short, decoder, header, order_bytes } = &mut session.phase
            else {
                return Output::none(); // stale window from a rung we left
            };
            let incoming = (m.cells.len() * graphene_iblt::CELL_BYTES) as u64;
            if decoder.state_bytes() + incoming > state_limit {
                // Decode state would outgrow its budget: abandon the
                // stream (short IDs bound the worst case instead).
                session.retries = MAX_RATELESS_BATCHES;
                Step::FallThrough
            } else {
                match decoder.push_cells(m.start_index, &m.cells) {
                    // A duplicate or reordered window (retransmission
                    // after a timed-out re-request): not attributable,
                    // not useful — drop it and let the timer re-request.
                    Err(RatelessError::Gap { .. }) => Step::Ignore,
                    // Double-decode: the §6.1 attack in rateless form.
                    Err(RatelessError::Malformed(_)) => Step::Hostile,
                    Ok(DecodeProgress::NeedMore(n)) => {
                        if session.retries >= MAX_RATELESS_BATCHES {
                            Step::FallThrough
                        } else {
                            session.retries += 1;
                            // Inline epoch bump (`bump_epoch` would
                            // conflict with the live decoder borrow).
                            session.attempt = (session.attempt + 1) & (ANN_FLAG - 1);
                            Step::Request {
                                from_index: decoder.received(),
                                count: n.min(MAX_CELLS_PER_BATCH) as u32,
                                epoch: session.attempt,
                            }
                        }
                    }
                    Ok(DecodeProgress::Decoded(diff)) => {
                        let mut resolved = by_short.clone();
                        for sid in &diff.only_local {
                            resolved.remove(sid);
                        }
                        let header = *header;
                        let order_bytes = order_bytes.clone();
                        if diff.only_remote.is_empty() {
                            match protocol2::finalize_p2(
                                &resolved,
                                header.merkle_root,
                                &order_bytes,
                                &cfg,
                            ) {
                                Ok(ok) => match ok.ordered_ids {
                                    Some(ids) => Step::Done { ids, header },
                                    None => {
                                        session.retries = MAX_RATELESS_BATCHES;
                                        Step::FallThrough
                                    }
                                },
                                Err(_) => {
                                    // Decoded but would not finalize: the
                                    // stream cannot do better, fall through.
                                    session.retries = MAX_RATELESS_BATCHES;
                                    Step::FallThrough
                                }
                            }
                        } else {
                            session.bump_epoch();
                            let epoch = session.attempt;
                            let needs = diff.only_remote.clone();
                            session.phase =
                                RxPhase::GrapheneFetch { resolved, header, order_bytes };
                            Step::Fetch { needs, epoch }
                        }
                    }
                }
            }
        };
        match step {
            Step::Ignore => Output::none(),
            Step::Hostile => self.punish(from, MALFORMED_SCORE),
            Step::FallThrough => self.escalate(block_id),
            Step::Request { from_index, count, epoch } => {
                let mut out = Output::none();
                out.send.push((
                    from,
                    Message::GetMoreCells(GetMoreCellsMsg { block_id, from_index, count }),
                ));
                out.timers.push((block_id, epoch));
                out
            }
            Step::Fetch { needs, epoch } => {
                let mut out = Output::none();
                out.send.push((
                    from,
                    Message::GetGrapheneTxn(GetGrapheneTxnMsg { block_id, short_ids: needs }),
                ));
                out.timers.push((block_id, epoch));
                out
            }
            Step::Done { ids, header } => self.complete_block(block_id, header, ids, neighbors),
        }
    }

    // --- Compact Blocks ----------------------------------------------------

    fn on_cmpct_block(&mut self, from: PeerId, m: CmpctBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let Some(outcome) = session.accept_from(from) else {
            return Output::none(); // unsolicited, or a hedge loser's late reply
        };
        match outcome {
            HedgeOutcome::Normal => {}
            HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
            HedgeOutcome::HedgeWon => self.hedges_won += 1,
        }
        let key = cmpct_key(&m.header, m.nonce);
        let mut by_short: HashMap<u64, Option<TxId>> = HashMap::new();
        for tx in self.mempool.iter() {
            by_short
                .entry(short_id_6(key, tx.id()))
                .and_modify(|slot| *slot = None)
                .or_insert(Some(*tx.id()));
        }
        let total = m.short_ids.len() + m.prefilled.len();
        let mut slots: Vec<Option<TxId>> = vec![None; total];
        for (i, tx) in &m.prefilled {
            if (*i as usize) < total {
                slots[*i as usize] = Some(*tx.id());
                session.add_body(&self.limits, tx);
            }
        }
        // Short IDs fill the remaining positions in order.
        let mut short_iter = m.short_ids.iter();
        let mut missing: Vec<u64> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let Some(short) = short_iter.next() else { break };
            match by_short.get(short) {
                Some(Some(id)) => *slot = Some(*id),
                _ => missing.push(i as u64),
            }
        }
        if missing.is_empty() {
            let ids: Vec<TxId> = slots.into_iter().flatten().collect();
            if ids.len() == total {
                return self.complete_block(block_id, m.header, ids, neighbors);
            }
            return Output::none();
        }
        session.bump_epoch();
        let attempt = session.attempt;
        session.phase = RxPhase::CompactWait { header: m.header, slots, missing: missing.clone() };
        let mut out = Output::none();
        out.send.push((from, Message::GetBlockTxn(GetBlockTxnMsg { block_id, indexes: missing })));
        out.timers.push((block_id, attempt));
        out
    }

    fn on_get_block_txn(&mut self, from: PeerId, m: GetBlockTxnMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let txns: Vec<Transaction> =
            m.indexes.iter().filter_map(|&i| block.txns().get(i as usize).cloned()).collect();
        let mut out = Output::none();
        out.send.push((from, Message::BlockTxn(BlockTxnMsg { block_id: m.block_id, txns })));
        out
    }

    fn on_block_txn(&mut self, from: PeerId, m: BlockTxnMsg, neighbors: &[PeerId]) -> Output {
        let block_id = m.block_id;
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let Some(outcome) = session.accept_from(from) else {
            return Output::none(); // unsolicited, or a hedge loser's late reply
        };
        match outcome {
            HedgeOutcome::Normal => {}
            HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
            HedgeOutcome::HedgeWon => self.hedges_won += 1,
        }
        for tx in &m.txns {
            session.add_body(&self.limits, tx);
        }
        let mut needs_escalate = false;
        let out = match &mut session.phase {
            RxPhase::CompactWait { header, slots, missing } => {
                let header = *header;
                if m.txns.len() != missing.len() {
                    return Output::none(); // wait for timeout
                }
                for (&i, tx) in missing.iter().zip(&m.txns) {
                    slots[i as usize] = Some(*tx.id());
                }
                let ids: Vec<TxId> = slots.iter().copied().flatten().collect();
                if ids.len() == slots.len() {
                    self.complete_block(block_id, header, ids, neighbors)
                } else {
                    Output::none()
                }
            }
            RxPhase::XthinWait { header, ids, unresolved } => {
                let header = *header;
                if m.txns.len() != unresolved.len() {
                    return Output::none();
                }
                for (&i, tx) in unresolved.iter().zip(&m.txns) {
                    ids[i as usize] = *tx.id();
                }
                let ids = ids.clone();
                self.complete_block(block_id, header, ids, neighbors)
            }
            RxPhase::GrapheneFetch { resolved, header, order_bytes } => {
                let header = *header;
                let order_bytes = order_bytes.clone();
                for tx in &m.txns {
                    resolved.insert(short_id_8(tx.id()), *tx.id());
                }
                let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
                    return Output::none();
                };
                let resolved = resolved.clone();
                match protocol2::finalize_p2(&resolved, header.merkle_root, &order_bytes, &cfg) {
                    Ok(ok) => match ok.ordered_ids {
                        Some(ids) => self.complete_block(block_id, header, ids, neighbors),
                        None => {
                            needs_escalate = true;
                            Output::none()
                        }
                    },
                    Err(_) => {
                        // Repair failed (wrong/garbage bodies or unlucky
                        // decode): climb the ladder, do not ban — the
                        // failure is not attributable.
                        needs_escalate = true;
                        Output::none()
                    }
                }
            }
            _ => Output::none(),
        };
        if needs_escalate {
            return self.escalate(block_id);
        }
        out
    }

    // --- XThin --------------------------------------------------------------

    fn on_xthin_getdata(&mut self, from: PeerId, m: XthinGetDataMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let block_ids: Vec<Digest> = block.txns().iter().map(|tx| *tx.id()).collect();
        let hits = m.mempool_filter.contains_batch(&block_ids);
        let missing: Vec<Transaction> = block
            .txns()
            .iter()
            .enumerate()
            .filter(|(j, _)| !hits.get(*j))
            .map(|(_, tx)| tx.clone())
            .collect();
        let short_ids: Vec<u64> = block.txns().iter().map(|tx| short_id_8(tx.id())).collect();
        let mut out = Output::none();
        out.send.push((
            from,
            Message::XthinBlock(XthinBlockMsg { header: *block.header(), short_ids, missing }),
        ));
        out
    }

    fn on_xthin_block(&mut self, from: PeerId, m: XthinBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let Some(outcome) = session.accept_from(from) else {
            return Output::none(); // unsolicited, or a hedge loser's late reply
        };
        match outcome {
            HedgeOutcome::Normal => {}
            HedgeOutcome::PrimaryWon => self.hedges_wasted += 1,
            HedgeOutcome::HedgeWon => self.hedges_won += 1,
        }
        for tx in &m.missing {
            session.add_body(&self.limits, tx);
        }
        // Mempool-first resolution, as deployed clients do (see
        // `graphene-baselines::xthin` for the §6.1 implications).
        let mut by_short: HashMap<u64, TxId> = HashMap::new();
        for tx in m.missing.iter() {
            by_short.insert(short_id_8(tx.id()), *tx.id());
        }
        for tx in self.mempool.iter() {
            by_short.insert(short_id_8(tx.id()), *tx.id());
        }
        let mut ids: Vec<TxId> = Vec::with_capacity(m.short_ids.len());
        let mut unresolved: Vec<u64> = Vec::new();
        for (i, short) in m.short_ids.iter().enumerate() {
            match by_short.get(short) {
                Some(id) => ids.push(*id),
                None => {
                    unresolved.push(i as u64);
                    ids.push(TxId::ZERO);
                }
            }
        }
        if unresolved.is_empty() {
            return self.complete_block(block_id, m.header, ids, neighbors);
        }
        session.bump_epoch();
        let attempt = session.attempt;
        session.phase =
            RxPhase::XthinWait { header: m.header, ids, unresolved: unresolved.clone() };
        let mut out = Output::none();
        out.send
            .push((from, Message::GetBlockTxn(GetBlockTxnMsg { block_id, indexes: unresolved })));
        out.timers.push((block_id, attempt));
        out
    }

    // --- Full blocks ---------------------------------------------------------

    fn on_get_full_block(&mut self, from: PeerId, m: GetFullBlockMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        Self::push_full_block(&self.cache, from, block, &mut out);
        out
    }

    fn on_full_block(&mut self, from: PeerId, m: FullBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        if self.blocks.contains_key(&block_id) {
            return Output::none();
        }
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none(); // unsolicited
        };
        // Full blocks self-validate (merkle root below), so any sender is
        // acceptable — but a hedged session still settles its race here
        // for the win/waste counters and late-reply dedup.
        match session.accept_from(from) {
            Some(HedgeOutcome::PrimaryWon) => self.hedges_wasted += 1,
            Some(HedgeOutcome::HedgeWon) => self.hedges_won += 1,
            _ => {}
        }
        // Accept a valid full block from any peer (a failed-over session's
        // old server may still answer); `from_parts` revalidates the merkle
        // root, so garbage cannot get in.
        let Ok(block) = Block::from_parts(m.header, m.txns, OrderingScheme::Ctor) else {
            return Output::none(); // corrupt; timeout will climb the ladder
        };
        self.store_and_announce(block_id, block, neighbors)
    }

    // --- Completion -----------------------------------------------------------

    /// Assemble a reconstructed block from ordered IDs, bodies coming from
    /// the mempool and the session's collected transactions.
    fn complete_block(
        &mut self,
        block_id: Digest,
        header: Header,
        ordered_ids: Vec<TxId>,
        neighbors: &[PeerId],
    ) -> Output {
        let Some(session) = self.sessions.get(&block_id) else {
            return Output::none();
        };
        let mut txns = Vec::with_capacity(ordered_ids.len());
        for id in &ordered_ids {
            if let Some(tx) = self.mempool.get(id) {
                txns.push(tx.clone());
            } else if let Some(tx) = session.bodies.get(id) {
                txns.push(tx.clone());
            } else {
                return Output::none(); // body unavailable; let the timer fire
            }
        }
        match Block::from_parts(header, txns, OrderingScheme::Ctor) {
            Ok(block) => self.store_and_announce(block_id, block, neighbors),
            Err(_) => Output::none(),
        }
    }

    fn store_and_announce(
        &mut self,
        block_id: Digest,
        block: Block,
        neighbors: &[PeerId],
    ) -> Output {
        self.sessions.remove(&block_id);
        self.mempool.confirm(&block.ids());
        self.blocks.insert(block_id, block);
        let mut out = Output::none();
        out.completed_block = Some(block_id);
        self.announce(block_id, neighbors, &mut out);
        out
    }
}

/// Build a BIP152 compact block (shared with `graphene-baselines`' logic).
pub fn build_cmpctblock(block: &Block) -> CmpctBlockMsg {
    let nonce = block.id().low_u64();
    let key = cmpct_key(block.header(), nonce);
    let prefilled: Vec<(u64, Transaction)> =
        block.txns().first().map(|tx| vec![(0u64, tx.clone())]).unwrap_or_default();
    let short_ids: Vec<u64> =
        block.txns().iter().skip(1).map(|tx| short_id_6(key, tx.id())).collect();
    CmpctBlockMsg { header: *block.header(), nonce, short_ids, prefilled }
}

/// The block a *request*-class message asks about, if any. Used to stamp
/// outgoing requests for RTT measurement; announcements and transaction
/// gossip are not request/response paired and return `None`.
fn request_block_id(msg: &Message) -> Option<Digest> {
    match msg {
        Message::GetData(m) => Some(m.block_id),
        Message::GrapheneRequest(m) => Some(m.block_id),
        Message::GetGrapheneTxn(m) => Some(m.block_id),
        Message::GetGrapheneRetry(m) => Some(m.block_id),
        Message::GetBlockTxn(m) => Some(m.block_id),
        Message::XthinGetData(m) => Some(m.block_id),
        Message::GetFullBlock(m) => Some(m.block_id),
        Message::GetMoreCells(m) => Some(m.block_id),
        _ => None,
    }
}

/// The block a *response*-class message answers about, if any — the
/// counterpart of [`request_block_id`] for closing the RTT measurement.
fn response_block_id(msg: &Message) -> Option<Digest> {
    match msg {
        Message::GrapheneBlock(m) => Some(graphene_hashes::sha256d(&m.header.to_bytes())),
        Message::CmpctBlock(m) => Some(graphene_hashes::sha256d(&m.header.to_bytes())),
        Message::XthinBlock(m) => Some(graphene_hashes::sha256d(&m.header.to_bytes())),
        Message::FullBlock(m) => Some(graphene_hashes::sha256d(&m.header.to_bytes())),
        Message::GrapheneRecovery(m) => Some(m.block_id),
        Message::RatelessCells(m) => Some(m.block_id),
        Message::BlockTxn(m) => Some(m.block_id),
        _ => None,
    }
}

/// BIP152 short-ID key derivation: SHA-256 of header ‖ nonce.
pub fn cmpct_key(header: &Header, nonce: u64) -> SipKey {
    let mut data = Vec::with_capacity(88);
    data.extend_from_slice(&header.to_bytes());
    data.extend_from_slice(&nonce.to_le_bytes());
    let h = sha256(&data);
    let mut k0 = [0u8; 8];
    let mut k1 = [0u8; 8];
    k0.copy_from_slice(&h.0[0..8]);
    k1.copy_from_slice(&h.0[8..16]);
    SipKey::new(u64::from_le_bytes(k0), u64::from_le_bytes(k1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::OrderingScheme;

    fn block_of(n: usize, tag: u8) -> Block {
        let txns: Vec<Transaction> =
            (0..n).map(|i| Transaction::new(vec![tag, i as u8, 7, 7])).collect();
        Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor)
    }

    fn graphene_peer(id: usize) -> Peer {
        Peer::new(PeerId(id), RelayProtocol::Graphene(GrapheneConfig::default()), Mempool::new())
    }

    #[test]
    fn announce_dedupes_repeated_targets() {
        let mut p = graphene_peer(0);
        let block = block_of(3, 1);
        let id = block.id();
        // Originate to overlapping neighbor lists: [1, 2], then a
        // handshake re-announcement toward 1 again.
        p.originate(block, &[PeerId(1), PeerId(2), PeerId(1)]);
        let _ = p.handshake(PeerId(1));
        let pending = p.pending_announcement(&id).expect("announcement tracked");
        assert_eq!(pending, &[PeerId(1), PeerId(2)], "duplicate PeerIds tracked");
    }

    #[test]
    fn pending_announcements_respect_cap() {
        let mut p = graphene_peer(0);
        p.limits.max_pending_announcements = 2;
        for tag in 0..5u8 {
            p.originate(block_of(2, tag), &[PeerId(1)]);
        }
        assert_eq!(p.pending_announcement_count(), 2);
    }

    #[test]
    fn session_cap_ignores_excess_announcements() {
        let mut p = graphene_peer(0);
        p.limits.max_sessions = 2;
        for tag in 0..4u8 {
            let id = block_of(2, tag).id();
            p.handle(PeerId(1), Message::Inv(InvMsg { block_id: id }), &[]);
        }
        assert_eq!(p.open_sessions(), 2);
        // Further announcements at the cap are ignored, not queued.
        let fresh = block_of(2, 9).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: fresh }), &[]);
        assert_eq!(p.open_sessions(), 2, "still at cap");
    }

    #[test]
    fn queue_sheds_oldest_announcements_first() {
        let mut p = graphene_peer(0);
        p.limits.max_queue_frames = 3;
        // Open a session for block A so its payload frames are protected.
        let a = block_of(2, 1).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);
        // Queue: [inv(x), blocktxn(A), inv(y), inv(z)] — cap 3.
        let shed = p.enqueue(PeerId(1), Message::Inv(InvMsg { block_id: block_of(2, 2).id() }), 40);
        assert_eq!(shed, 0);
        let protected = Message::BlockTxn(BlockTxnMsg { block_id: a, txns: vec![] });
        assert_eq!(p.enqueue(PeerId(1), protected, 40), 0);
        assert_eq!(
            p.enqueue(PeerId(1), Message::Inv(InvMsg { block_id: block_of(2, 3).id() }), 40),
            0
        );
        let shed = p.enqueue(PeerId(1), Message::Inv(InvMsg { block_id: block_of(2, 4).id() }), 40);
        assert_eq!(shed, 1, "over cap: one frame must go");
        // The oldest announcement went; the protected recovery frame stayed.
        let (_, first, _) = p.dequeue().expect("queue non-empty");
        assert!(matches!(first, Message::BlockTxn(_)), "protected frame was shed: {first:?}");
        assert_eq!(p.queued_frames(), 2);
    }

    #[test]
    fn queue_never_sheds_active_recovery_even_at_byte_cap() {
        let mut p = graphene_peer(0);
        p.limits.max_queue_frames = 2;
        let a = block_of(2, 1).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);
        let protected = || Message::BlockTxn(BlockTxnMsg { block_id: a, txns: vec![] });
        assert_eq!(p.enqueue(PeerId(1), protected(), 40), 0);
        assert_eq!(p.enqueue(PeerId(1), protected(), 40), 0);
        // All queued frames are protected: the hard cap drops the newest.
        assert_eq!(p.enqueue(PeerId(1), protected(), 40), 1);
        assert_eq!(p.queued_frames(), 2);
    }

    #[test]
    fn orphan_bodies_respect_byte_cap() {
        let mut p = graphene_peer(0);
        p.limits.max_body_bytes = 10;
        let a = block_of(2, 1).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);
        // Each tx body is 4 bytes; the cap fits two.
        let txns: Vec<Transaction> =
            (0..5).map(|i| Transaction::new(vec![9, i as u8, 1, 1])).collect();
        p.handle(PeerId(1), Message::BlockTxn(BlockTxnMsg { block_id: a, txns }), &[]);
        let acct = p.accounting();
        assert!(acct.body_bytes <= 10, "body bytes {} over cap", acct.body_bytes);
    }

    #[test]
    fn misbehavior_table_respects_cap() {
        let mut p = graphene_peer(0);
        p.limits.max_misbehavior_entries = 3;
        let hostile = |_: usize| {
            Message::XthinGetData(XthinGetDataMsg {
                block_id: Digest::ZERO,
                mempool_filter: BloomFilter::new(75_000, 0.001, 7),
            })
        };
        for i in 1..=8usize {
            p.handle(PeerId(i), hostile(i), &[]);
        }
        assert!(p.misbehavior_entries() <= 3, "{} entries", p.misbehavior_entries());
    }

    #[test]
    fn snapshot_restore_keeps_durable_loses_volatile() {
        let mut p = graphene_peer(0);
        p.mempool.insert(Transaction::new(vec![1, 1, 1]));
        let block = block_of(3, 2);
        let held = block.id();
        p.originate(block, &[PeerId(1)]);
        // Open a volatile session on another block.
        let inflight = block_of(2, 3).id();
        p.handle(PeerId(2), Message::Inv(InvMsg { block_id: inflight }), &[]);
        assert_eq!(p.open_sessions(), 1);
        assert_eq!(p.pending_announcement_count(), 1);

        let snap = p.snapshot();
        p.restore(snap);
        assert!(p.has_block(&held), "durable block lost");
        assert!(!p.mempool.is_empty(), "durable mempool lost");
        assert_eq!(p.open_sessions(), 0, "sessions must not survive a crash");
        assert_eq!(p.pending_announcement_count(), 0);
        assert_eq!(p.queued_frames(), 0);
        // A re-announcement reopens the lost session.
        p.handle(PeerId(2), Message::Inv(InvMsg { block_id: inflight }), &[]);
        assert_eq!(p.open_sessions(), 1);
    }

    #[test]
    fn timer_current_tracks_session_epoch_and_announcements() {
        let mut p = graphene_peer(0);
        let a = block_of(2, 1).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);
        assert!(p.timer_current(&a, 0));
        assert!(!p.timer_current(&a, 1), "future epoch is not live");
        let b = block_of(2, 2).id();
        p.originate(block_of(2, 2), &[PeerId(1)]);
        assert!(p.timer_current(&b, ANN_FLAG));
        let _ = p.handle_timeout(b, MAX_ANN_RETRIES | ANN_FLAG); // exhausts retries
        assert!(!p.timer_current(&b, ANN_FLAG));
    }

    /// Satellite regression for the encode-once cache: a `0x14`
    /// `GetGrapheneRetry` must NEVER be answered with a cached frame — the
    /// retry rung exists to re-encode with a fresh salt after the cached
    /// attempt-0 salts already failed to decode.
    #[test]
    fn retry_rung_never_reuses_a_cached_frame() {
        use graphene_wire::Decode;
        let mut p = graphene_peer(0);
        p.enable_encode_cache();
        let block = block_of(30, 5);
        let id = block.id();
        p.originate(block, &[]);

        // Attempt 0: the canonical frame is encoded once and cached.
        let out = p.handle(
            PeerId(1),
            Message::GetData(GetDataMsg { block_id: id, mempool_count: 60 }),
            &[],
        );
        assert_eq!(out.send_frames.len(), 1, "cached path ships a raw frame");
        let cached_frame = out.send_frames[0].1.clone();
        let stats = p.cache_stats().expect("cache enabled");
        assert_eq!((stats.hits, stats.misses, stats.bypasses), (0, 1, 0));

        // The 0x14 retry rung: structurally cache-free, fresh salts.
        let retry_req = |attempt| {
            Message::GetGrapheneRetry(GetGrapheneRetryMsg {
                block_id: id,
                mempool_count: 60,
                attempt,
            })
        };
        let out = p.handle(PeerId(1), retry_req(1), &[]);
        assert!(out.send_frames.is_empty(), "retry must not ship a cached frame");
        let stats = p.cache_stats().expect("cache enabled");
        assert_eq!(stats.hits, 0, "retry was served from the cache");
        assert_eq!(stats.bypasses, 1, "retry must be accounted as a bypass");
        let Some((_, Message::GrapheneBlock(retry))) = out.send.first() else {
            panic!("retry must answer with a fresh GrapheneBlock: {:?}", out.send);
        };
        let Ok(Message::GrapheneBlock(cached)) = Message::decode_exact(&cached_frame) else {
            panic!("cached frame must decode");
        };
        assert_ne!(retry.iblt_i.salt(), cached.iblt_i.salt(), "retry reused the cached salts");
        assert_ne!(
            Message::GrapheneBlock(retry.clone()).to_vec().as_slice(),
            &cached_frame[..],
            "retry frame byte-identical to the cached attempt-0 frame"
        );

        // Even a hostile attempt-0 "retry" stays off the cache: the
        // handler never consults it, so no lookup can hit.
        let out = p.handle(PeerId(1), retry_req(0), &[]);
        assert!(out.send_frames.is_empty());
        let stats = p.cache_stats().expect("cache enabled");
        assert_eq!((stats.hits, stats.bypasses), (0, 2));
    }

    /// Shed ordering with cache-served bodies queued: the decoded frame of
    /// a relay-cache `GrapheneBlock` classifies as active-session recovery,
    /// so announcements still drop first.
    #[test]
    fn cache_served_bodies_survive_shedding_before_announcements() {
        use graphene_wire::Decode;
        let mut p = graphene_peer(0);
        p.limits.max_queue_frames = 3;
        let block = block_of(20, 6);
        let a = block.id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);

        // A sender-side relay with the cache enabled produces A's frame.
        let mut sender = graphene_peer(9);
        sender.enable_encode_cache();
        sender.originate(block, &[]);
        let out = sender.handle(
            PeerId(0),
            Message::GetData(GetDataMsg { block_id: a, mempool_count: 40 }),
            &[],
        );
        let frame = out.send_frames[0].1.clone();
        let body = Message::decode_exact(&frame).expect("cached frame decodes");
        assert!(matches!(body, Message::GrapheneBlock(_)));

        // Queue [inv, body(A), inv] at cap 3; the next inv must shed an
        // announcement, never the cache-served session body.
        let inv = |tag| Message::Inv(InvMsg { block_id: block_of(2, tag).id() });
        assert_eq!(p.enqueue(PeerId(1), inv(7), 40), 0);
        assert_eq!(p.enqueue(PeerId(1), body, frame.len()), 0);
        assert_eq!(p.enqueue(PeerId(1), inv(8), 40), 0);
        assert_eq!(p.enqueue(PeerId(1), inv(9), 40), 1, "over cap: one announcement goes");
        let mut bodies = 0;
        while let Some((_, m, _)) = p.dequeue() {
            bodies += matches!(m, Message::GrapheneBlock(_)) as usize;
        }
        assert_eq!(bodies, 1, "the cache-served body was shed");
    }

    #[test]
    fn accounting_high_water_mark_monotone() {
        let mut p = graphene_peer(0);
        let a = block_of(2, 1).id();
        p.handle(PeerId(1), Message::Inv(InvMsg { block_id: a }), &[]);
        let hwm = p.accounting().hwm_bytes;
        assert!(hwm >= SESSION_FIXED_BYTES, "session not accounted: {hwm}");
        assert!(hwm <= p.limits.accounted_ceiling());
    }

    // --- Rateless rung -----------------------------------------------------

    /// Build a server/receiver pair mid-ladder: the receiver's Protocol 2
    /// request went unanswered, the timeout fired, and the session now sits
    /// on the rateless rung with its first `GetMoreCells` in `out`.
    fn rateless_session() -> (Peer, Peer, Digest, Output) {
        use graphene_blockchain::{Scenario, ScenarioParams};
        use rand::{rngs::StdRng, SeedableRng};
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 0.6,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(8));
        let id = s.block.id();
        let mut server = graphene_peer(0);
        server.mempool = s.receiver_mempool.clone();
        server.originate(s.block.clone(), &[]);
        let mut receiver = graphene_peer(1);
        receiver.mempool = s.receiver_mempool.clone();
        receiver.enable_rateless();

        let out = receiver.handle(PeerId(0), Message::Inv(InvMsg { block_id: id }), &[]);
        let (_, getdata) = out.send.into_iter().next().expect("getdata");
        let out = server.handle(PeerId(1), getdata, &[]);
        let (_, gblock) = out.send.into_iter().next().expect("graphene block");
        let out = receiver.handle(PeerId(0), gblock, &[]);
        assert!(out.completed_block.is_none(), "partial mempool must need Protocol 2");
        let &(_, attempt) = out.timers.last().expect("P2 timer armed");
        // The GrapheneRequest is lost; the timeout escalates. With rateless
        // enabled and a candidate set in hand, the next rung is the stream.
        let out = receiver.handle_timeout(id, attempt);
        assert_eq!(out.escalations, 1);
        assert!(
            matches!(out.send.first(), Some((_, Message::GetMoreCells(_)))),
            "expected a cell window request: {:?}",
            out.send
        );
        (server, receiver, id, out)
    }

    #[test]
    fn rateless_rung_decodes_after_lost_p2_response() {
        let (mut server, mut receiver, id, out) = rateless_session();
        // In-flight decode state is charged against the resource ceiling.
        let acct = receiver.accounting();
        assert!(acct.rateless_state_bytes > 0, "decoder state not accounted");
        assert!(acct.hwm_bytes <= receiver.limits.accounted_ceiling());

        let mut to_server: Vec<Message> = out.send.into_iter().map(|(_, m)| m).collect();
        let mut completed = false;
        for _ in 0..64 {
            let mut to_receiver = Vec::new();
            for m in to_server.drain(..) {
                to_receiver.extend(server.handle(PeerId(1), m, &[]).send);
            }
            for (_, m) in to_receiver {
                let out = receiver.handle(PeerId(0), m, &[]);
                completed |= out.completed_block == Some(id);
                to_server.extend(out.send.into_iter().map(|(_, m)| m));
            }
            if completed {
                break;
            }
            assert!(!to_server.is_empty(), "exchange stalled before completion");
        }
        assert!(completed, "rateless rung never reconstructed the block");
        assert!(receiver.has_block(&id));
        assert_eq!(receiver.accounting().rateless_state_bytes, 0, "state freed on completion");
    }

    #[test]
    fn wrong_salt_cell_stream_is_banned() {
        let mut p = graphene_peer(1);
        let id = block_of(2, 1).id();
        // The codec salt is a public function of the block ID: any other
        // salt is provably hostile even without an open session.
        let msg = Message::RatelessCells(RatelessCellsMsg {
            block_id: id,
            salt: rateless_salt(&id) ^ 1,
            start_index: 0,
            cells: vec![graphene_iblt::Cell::default(); 4],
        });
        let out = p.handle(PeerId(0), msg, &[]);
        assert_eq!(out.banned, vec![PeerId(0)]);
        assert!(p.is_banned(PeerId(0)));
    }

    #[test]
    fn rateless_state_cap_falls_through_to_short_ids() {
        let (mut server, mut receiver, _id, out) = rateless_session();
        // Shrink the budget below the already-charged pending heap: the
        // next window must abandon the stream for the bounded short-ID rung.
        receiver.limits.max_rateless_state_bytes = 64;
        let (_, req) = out.send.into_iter().next().expect("window request");
        let sout = server.handle(PeerId(1), req, &[]);
        let (_, cells) = sout.send.into_iter().next().expect("cells");
        let rout = receiver.handle(PeerId(0), cells, &[]);
        assert_eq!(rout.escalations, 1, "budget overrun must escalate");
        assert!(
            matches!(rout.send.first(), Some((_, Message::XthinGetData(_)))),
            "expected the short-ID rung: {:?}",
            rout.send
        );
    }

    #[test]
    fn duplicate_cell_window_is_ignored_not_punished() {
        let (mut server, mut receiver, id, out) = rateless_session();
        let (_, req) = out.send.into_iter().next().expect("window request");
        let sout = server.handle(PeerId(1), req, &[]);
        let (_, cells) = sout.send.into_iter().next().expect("cells");
        let _ = receiver.handle(PeerId(0), cells.clone(), &[]);
        // A replayed window (duplicate delivery, link reorder) is not
        // attributable misbehavior: dropped, re-requested by the timer.
        let out = receiver.handle(PeerId(0), cells, &[]);
        assert!(out.banned.is_empty());
        assert!(out.send.is_empty());
        assert!(!receiver.is_banned(PeerId(0)));
        assert!(receiver.timer_current(&id, receiver.sessions[&id].attempt));
    }

    #[test]
    fn crash_wipes_rateless_decode_state() {
        let (_server, mut receiver, _id, _out) = rateless_session();
        assert!(receiver.accounting().rateless_state_bytes > 0);
        let snap = receiver.snapshot();
        receiver.restore(snap);
        assert_eq!(receiver.open_sessions(), 0, "decode sessions must not survive a crash");
        assert_eq!(receiver.accounting().rateless_state_bytes, 0);
    }

    /// Satellite regression mirroring the 0x14 rule: a `GetMoreCells` must
    /// never be answered from the encode cache. Every request names a
    /// different window (`from_index` advances), so a cached frame could
    /// only replay cells the receiver already consumed.
    #[test]
    fn rateless_rung_never_reuses_a_cached_frame() {
        let mut p = graphene_peer(0);
        p.enable_encode_cache();
        let block = block_of(30, 5);
        let id = block.id();
        p.originate(block, &[]);

        // Attempt 0 populates the cache with the canonical frame.
        let out = p.handle(
            PeerId(1),
            Message::GetData(GetDataMsg { block_id: id, mempool_count: 60 }),
            &[],
        );
        assert_eq!(out.send_frames.len(), 1, "cached path ships a raw frame");
        let stats = p.cache_stats().expect("cache enabled");
        assert_eq!((stats.hits, stats.misses, stats.bypasses), (0, 1, 0));

        // A cell window request: structurally cache-free.
        let out = p.handle(
            PeerId(1),
            Message::GetMoreCells(GetMoreCellsMsg { block_id: id, from_index: 16, count: 8 }),
            &[],
        );
        assert!(out.send_frames.is_empty(), "cells must not ship as a cached frame");
        let stats = p.cache_stats().expect("cache enabled");
        assert_eq!(stats.hits, 0, "cell window was served from the cache");
        assert_eq!(stats.bypasses, 1, "cell window must be accounted as a bypass");
        let Some((_, Message::RatelessCells(cells))) = out.send.first() else {
            panic!("expected a fresh cell window: {:?}", out.send);
        };
        assert_eq!(cells.salt, rateless_salt(&id));
        assert_eq!(cells.start_index, 16);
        assert_eq!(cells.cells.len(), 8);
    }

    // --- Adaptive failure detection ----------------------------------------

    /// A victim holding the whole block in its mempool, plus a server peer
    /// that originated `block` and can answer requests for it.
    fn victim_and_server(block: &Block, victim_id: usize, server_id: usize) -> (Peer, Peer) {
        let mut victim = graphene_peer(victim_id);
        for tx in block.txns() {
            victim.mempool.insert(tx.clone());
        }
        let mut server = graphene_peer(server_id);
        server.originate(block.clone(), &[]);
        (victim, server)
    }

    #[test]
    fn session_epoch_clamps_below_ann_flag() {
        // Regression: a long-lived session whose epoch reached ANN_FLAG
        // via += 1 would have its next timer routed to announce_timeout
        // (the flag bit is how the two timer families share one event).
        let mut p = graphene_peer(1);
        let id = block_of(2, 7).id();
        p.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        // Age the session to the last epoch below the flag bit.
        p.sessions.get_mut(&id).expect("session open").attempt = ANN_FLAG - 1;
        assert!(p.timer_current(&id, ANN_FLAG - 1));
        let out = p.handle_timeout(id, ANN_FLAG - 1);
        assert!(!out.send.is_empty(), "misrouted to announce_timeout: no request went out");
        let (_, epoch) = out.timers[0];
        assert_eq!(epoch & ANN_FLAG, 0, "session epoch collided with the announcement flag");
        assert_eq!(p.sessions[&id].attempt, 0, "epoch must wrap below ANN_FLAG");
    }

    #[test]
    fn hedged_fetch_first_response_wins_and_late_reply_is_not_punished() {
        let block = block_of(40, 11);
        let id = block.id();
        let (mut victim, mut server) = victim_and_server(&block, 1, 2);
        victim.enable_adaptive();
        // Session opens against peer 2; peer 3 announces late → alternate.
        let out = victim.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        let Some((_, Message::GetData(getdata))) = out.send.first().cloned() else {
            panic!("expected a GetData: {:?}", out.send);
        };
        victim.handle(PeerId(3), Message::Inv(InvMsg { block_id: id }), &[]);
        // The timer fires: the rung climbs and a hedge races peer 3.
        let out = victim.handle_timeout(id, 0);
        assert_eq!(victim.hedge_stats().0, 1, "no hedge issued");
        assert!(
            out.send.iter().any(|(to, _)| *to == PeerId(3)),
            "hedge request never sent to the alternate: {:?}",
            out.send
        );
        // Craft the block response once, then deliver it from the hedge
        // peer first — it must win the race and complete the session.
        let resp = server.handle(PeerId(1), Message::GetData(getdata), &[]);
        let (_, block_msg) = resp.send.first().cloned().expect("server answered");
        let out = victim.handle(PeerId(3), block_msg.clone(), &[]);
        assert!(out.completed_block.is_some(), "hedge response should complete the session");
        assert_eq!(victim.hedge_stats(), (1, 1, 0), "hedge must be counted as won");
        // The primary's late reply hits a closed session: silently
        // discarded, never punished — hedging must not create bans.
        let out = victim.handle(PeerId(2), block_msg, &[]);
        assert!(out.banned.is_empty());
        assert!(!victim.is_banned(PeerId(2)));
        assert_eq!(victim.misbehavior_entries(), 0, "late reply must not score misbehavior");
    }

    #[test]
    fn primary_win_counts_the_hedge_as_wasted() {
        let block = block_of(40, 12);
        let id = block.id();
        let (mut victim, mut server) = victim_and_server(&block, 1, 2);
        victim.enable_adaptive();
        let out = victim.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        let Some((_, Message::GetData(getdata))) = out.send.first().cloned() else {
            panic!("expected a GetData: {:?}", out.send);
        };
        victim.handle(PeerId(3), Message::Inv(InvMsg { block_id: id }), &[]);
        victim.handle_timeout(id, 0);
        assert_eq!(victim.hedge_stats().0, 1);
        let resp = server.handle(PeerId(1), Message::GetData(getdata), &[]);
        let (_, block_msg) = resp.send.first().cloned().expect("server answered");
        // The original server answers first: hedge wasted, not won.
        let out = victim.handle(PeerId(2), block_msg, &[]);
        assert!(out.completed_block.is_some());
        assert_eq!(victim.hedge_stats(), (1, 0, 1));
    }

    #[test]
    fn failover_prefers_a_closed_circuit_alternate() {
        let mut p = graphene_peer(1);
        p.enable_adaptive();
        let id = block_of(2, 13).id();
        // Session against 2; alternates announce in order [5, 6].
        p.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        p.handle(PeerId(5), Message::Inv(InvMsg { block_id: id }), &[]);
        p.handle(PeerId(6), Message::Inv(InvMsg { block_id: id }), &[]);
        // Trip peer 5's breaker open.
        for _ in 0..crate::health::TRIP_THRESHOLD {
            p.health.note_failure(PeerId(5), p.now);
        }
        assert_eq!(p.breaker_state(PeerId(5)), BreakerState::Open);
        // Exhaust the ladder so the next timeout fails over.
        p.sessions.get_mut(&id).expect("session open").rung = Rung::FullBlock;
        let out = p.failover(id);
        assert_eq!(out.failovers, 1);
        assert_eq!(
            p.sessions[&id].server,
            PeerId(6),
            "failover must skip the open-circuit alternate"
        );
        // The skipped peer stays available (still an alternate, never
        // banned): the breaker only reorders preference.
        assert!(p.sessions[&id].alternates.contains(&PeerId(5)));
        assert!(!p.is_banned(PeerId(5)));
    }

    #[test]
    fn rtt_samples_come_from_request_response_pairs() {
        let block = block_of(40, 14);
        let id = block.id();
        let (mut victim, mut server) = victim_and_server(&block, 1, 2);
        victim.enable_adaptive();
        victim.set_clock(SimTime::from_millis(1_000));
        let out = victim.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        let Some((_, Message::GetData(getdata))) = out.send.first().cloned() else {
            panic!("expected a GetData: {:?}", out.send);
        };
        let resp = server.handle(PeerId(1), Message::GetData(getdata), &[]);
        let (_, block_msg) = resp.send.first().cloned().expect("server answered");
        // The response lands 120 ms later.
        victim.set_clock(SimTime::from_millis(1_120));
        victim.handle(PeerId(2), block_msg, &[]);
        let est = victim.rtt_estimate(PeerId(2)).expect("round trip must be sampled");
        assert_eq!(est.srtt, 120_000, "srtt must equal the measured 120 ms");
        assert_eq!(est.samples, 1);
    }

    #[test]
    fn karn_rule_no_sample_and_no_reset_after_timeout() {
        let block = block_of(40, 15);
        let id = block.id();
        let (mut victim, mut server) = victim_and_server(&block, 1, 2);
        victim.enable_adaptive();
        victim.set_clock(SimTime::from_millis(1_000));
        let out = victim.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        let Some((_, Message::GetData(getdata))) = out.send.first().cloned() else {
            panic!("expected a GetData: {:?}", out.send);
        };
        // The timer fires before any reply: Karn's rule drops the stamp
        // and the breaker charges a failure.
        victim.set_clock(SimTime::from_millis(2_200));
        victim.handle_timeout(id, 0);
        assert!(!victim.health.is_empty(), "timeout must charge a breaker failure");
        // The tarpitted reply finally limps in. It is processed (honest
        // bytes), but the ambiguous exchange yields no RTT sample and the
        // failure streak survives.
        let resp = server.handle(PeerId(1), Message::GetData(getdata), &[]);
        let (_, block_msg) = resp.send.first().cloned().expect("server answered");
        victim.set_clock(SimTime::from_millis(2_400));
        victim.handle(PeerId(2), block_msg, &[]);
        assert!(victim.rtt_estimate(PeerId(2)).is_none(), "late reply must not feed the RTT");
        assert!(!victim.health.is_empty(), "late reply must not reset the failure streak");
    }

    #[test]
    fn tracker_state_is_volatile_and_charged_to_the_ceiling() {
        let block = block_of(40, 16);
        let id = block.id();
        let (mut victim, _server) = victim_and_server(&block, 1, 2);
        victim.enable_adaptive();
        victim.set_clock(SimTime::from_millis(500));
        victim.handle(PeerId(2), Message::Inv(InvMsg { block_id: id }), &[]);
        assert!(victim.accounting().tracker_bytes > 0, "in-flight stamp must be charged");
        victim.handle_timeout(id, 0);
        let acct = victim.accounting();
        assert!(acct.tracker_bytes > 0);
        assert!(acct.accounted_bytes() <= victim.limits.accounted_ceiling());
        let snap = victim.snapshot();
        victim.restore(snap);
        assert_eq!(victim.accounting().tracker_bytes, 0, "trackers must not survive a crash");
        assert!(victim.rtt.is_empty() && victim.health.is_empty() && victim.req_sent.is_empty());
    }
}
