//! Per-server round-trip-time estimation in RFC 6298 style.
//!
//! The seed's failure detector was a single constant: every retry timer
//! waited [`crate::backoff::BASE`] (2 s) regardless of how fast the server
//! actually answers. Against the 50 ms default link that is a 40×
//! overshoot — a dropped frame stalls a session for seconds — while a
//! *tarpit* adversary that answers in 1.9 s looks perfectly healthy.
//!
//! This module keeps a smoothed RTT (`SRTT`) and RTT variance (`RTTVAR`)
//! per server peer, updated from request→response pairs observed in
//! `peer.rs`, and derives a retransmission timeout
//! `RTO = SRTT + 4·RTTVAR` clamped to `[RTO_FLOOR, RTO_CAP]`. Servers we
//! have never exchanged a round trip with get [`INITIAL_RTO`] (1 s, per
//! RFC 6298 §2.1 spirit scaled to simulator latencies) — deliberately
//! *below* the tarpit's response delay, so the very first exchange with a
//! tarpit already trips the adaptive timer and triggers a hedged fetch.
//!
//! Everything is integer arithmetic over microsecond [`SimTime`] ticks
//! and updates happen in deterministic event order, so sweeps stay
//! byte-identical for any `--threads` value.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use crate::peer::PeerId;
use crate::time::SimTime;

/// RTO for a server with no RTT samples yet (1 s).
pub const INITIAL_RTO: SimTime = SimTime(1_000_000);

/// Lower clamp on any derived RTO (200 ms): even a LAN-fast server gets a
/// timer wide enough to absorb queueing delay without spurious hedges.
pub const RTO_FLOOR: SimTime = SimTime(200_000);

/// Upper clamp on any derived RTO (30 s), matching [`crate::backoff::CAP`].
pub const RTO_CAP: SimTime = SimTime(30_000_000);

/// Bytes charged to the accounted-memory ceiling per tracked entry
/// (shared by the RTT table, the health tracker and the in-flight
/// request stamps — a keyed record of a few machine words each).
pub const TRACKER_ENTRY_BYTES: u64 = 64;

/// Default cap on tracked servers per peer.
pub const MAX_RTT_ENTRIES: usize = 64;

/// Smoothed RTT state for one server, RFC 6298 integer arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RttEstimate {
    /// Smoothed round-trip time (µs).
    pub srtt: u64,
    /// Round-trip time variance (µs).
    pub rttvar: u64,
    /// Number of samples folded in.
    pub samples: u64,
}

impl RttEstimate {
    /// First sample: `SRTT = R`, `RTTVAR = R/2` (RFC 6298 §2.2).
    fn first(sample: u64) -> RttEstimate {
        RttEstimate { srtt: sample, rttvar: sample / 2, samples: 1 }
    }

    /// Subsequent samples (RFC 6298 §2.3):
    /// `RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|`, `SRTT = 7/8·SRTT + 1/8·R`.
    fn update(&mut self, sample: u64) {
        self.rttvar = (3 * self.rttvar + self.srtt.abs_diff(sample)) / 4;
        self.srtt = (7 * self.srtt + sample) / 8;
        self.samples += 1;
    }

    /// Retransmission timeout: `SRTT + 4·RTTVAR`, clamped.
    pub fn rto(&self) -> SimTime {
        let raw = self.srtt.saturating_add(4 * self.rttvar);
        SimTime(raw.clamp(RTO_FLOOR.0, RTO_CAP.0))
    }
}

/// Capped per-server RTT table.
///
/// Eviction is deterministic: when full, the least-recently-observed
/// entry goes (ties broken by smallest peer id), so the table contents —
/// and therefore every timer derived from them — are a pure function of
/// the observation sequence.
#[derive(Clone, Debug, Default)]
pub struct RttTable {
    entries: HashMap<PeerId, (RttEstimate, u64)>,
    tick: u64,
    cap: usize,
}

impl RttTable {
    /// An empty table holding at most `cap` servers.
    pub fn new(cap: usize) -> RttTable {
        RttTable { entries: HashMap::new(), tick: 0, cap: cap.max(1) }
    }

    /// Fold in one measured round trip against `server`.
    pub fn observe(&mut self, server: PeerId, sample: SimTime) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((est, used)) = self.entries.get_mut(&server) {
            est.update(sample.0);
            *used = tick;
            return;
        }
        if self.entries.len() >= self.cap {
            if let Some(victim) =
                self.entries.iter().map(|(&p, &(_, used))| (used, p.0, p)).min().map(|(_, _, p)| p)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(server, (RttEstimate::first(sample.0), tick));
    }

    /// The current estimate for `server`, if any samples exist.
    pub fn estimate(&self, server: PeerId) -> Option<RttEstimate> {
        self.entries.get(&server).map(|&(est, _)| est)
    }

    /// The RTO to arm against `server`: the estimate's RTO, or
    /// [`INITIAL_RTO`] when the server has never been measured.
    pub fn rto(&self, server: PeerId) -> SimTime {
        self.estimate(server).map_or(INITIAL_RTO, |est| est.rto())
    }

    /// Tracked servers (for accounted-memory charging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no server has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all state (crash/restart: RTT knowledge is volatile).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_server_gets_initial_rto() {
        let t = RttTable::new(8);
        assert_eq!(t.rto(PeerId(3)), INITIAL_RTO);
        assert!(t.estimate(PeerId(3)).is_none());
    }

    #[test]
    fn first_sample_follows_rfc_6298() {
        let mut t = RttTable::new(8);
        t.observe(PeerId(1), SimTime::from_millis(100));
        let est = t.estimate(PeerId(1)).unwrap();
        assert_eq!(est.srtt, 100_000);
        assert_eq!(est.rttvar, 50_000);
        // RTO = 100ms + 4·50ms = 300ms.
        assert_eq!(t.rto(PeerId(1)), SimTime::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_and_tighten() {
        let mut t = RttTable::new(8);
        for _ in 0..50 {
            t.observe(PeerId(1), SimTime::from_millis(80));
        }
        let est = t.estimate(PeerId(1)).unwrap();
        // SRTT converges to the sample; variance decays toward zero, so
        // the RTO clamps up to the floor rather than going spuriously low.
        assert!(est.srtt.abs_diff(80_000) < 2_000, "srtt {}", est.srtt);
        assert!(est.rttvar < 10_000, "rttvar {}", est.rttvar);
        assert_eq!(t.rto(PeerId(1)), RTO_FLOOR);
    }

    #[test]
    fn a_latency_spike_widens_the_rto() {
        let mut t = RttTable::new(8);
        for _ in 0..20 {
            t.observe(PeerId(1), SimTime::from_millis(50));
        }
        let quiet = t.rto(PeerId(1));
        t.observe(PeerId(1), SimTime::from_millis(500));
        assert!(t.rto(PeerId(1)) > quiet, "spike must widen the timer");
    }

    #[test]
    fn rto_respects_floor_and_cap() {
        let mut t = RttTable::new(8);
        t.observe(PeerId(1), SimTime::from_micros(10));
        assert_eq!(t.rto(PeerId(1)), RTO_FLOOR);
        t.observe(PeerId(2), SimTime(u64::MAX / 2));
        assert_eq!(t.rto(PeerId(2)), RTO_CAP);
    }

    #[test]
    fn eviction_is_capped_and_deterministic() {
        let mut t = RttTable::new(2);
        t.observe(PeerId(1), SimTime::from_millis(10));
        t.observe(PeerId(2), SimTime::from_millis(20));
        t.observe(PeerId(2), SimTime::from_millis(20)); // refresh 2
        t.observe(PeerId(3), SimTime::from_millis(30)); // evicts 1 (LRU)
        assert_eq!(t.len(), 2);
        assert!(t.estimate(PeerId(1)).is_none());
        assert!(t.estimate(PeerId(2)).is_some());
        assert!(t.estimate(PeerId(3)).is_some());
    }

    #[test]
    fn clear_resets_to_initial() {
        let mut t = RttTable::new(4);
        t.observe(PeerId(1), SimTime::from_millis(10));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rto(PeerId(1)), INITIAL_RTO);
    }
}
