//! Simulated time: microsecond ticks.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Value in milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1000
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimTime> for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(2) + SimTime::from_micros(500);
        assert_eq!(t.as_micros(), 2500);
        assert_eq!(t.as_millis(), 2);
        assert_eq!((t - SimTime::from_millis(3)).as_micros(), 0); // saturates
        assert_eq!(format!("{t}"), "2.500ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
