//! Topology generators for internet-scale simulations.
//!
//! Real peer-to-peer overlays are not rings or random regular graphs:
//! measured Bitcoin/Ethereum topologies show heavy-tailed degree
//! distributions — a few hub nodes with hundreds of connections and a
//! long tail of leaf nodes. [`barabasi_albert`] grows such a scale-free
//! graph by preferential attachment: each arriving node links to `m`
//! existing nodes with probability proportional to their current degree
//! (implemented with the classic repeated-endpoints trick, so sampling
//! stays `O(1)` per draw). The result is connected by construction and
//! its degree distribution approaches the BA power law `P(k) ~ k^-3`.
//!
//! Generation is a pure function of `(n, m, seed)` — the propagation
//! sweep builds identical 100k-peer graphs on every thread of every
//! trial.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Undirected edge list of a Barabási–Albert scale-free graph over
/// `0..n`, each new node attaching to `m` distinct predecessors with
/// degree-proportional probability. The first `m + 1` nodes form a
/// clique so early attachment has somewhere to go. Edges are unique
/// (no parallel edges, no self-loops) and the graph is connected.
///
/// Panics if `m == 0`; a graph with `n <= m + 1` is the full clique.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(m > 0, "attachment degree must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let core = (m + 1).min(n);
    let mut edges: Vec<(u32, u32)> =
        Vec::with_capacity(core * (core - 1) / 2 + n.saturating_sub(core) * m);
    // Every edge endpoint, listed once per incidence: drawing uniformly
    // from this list IS degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * edges.capacity());
    for a in 0..core {
        for b in (a + 1)..core {
            edges.push((a as u32, b as u32));
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }
    let mut picked: Vec<u32> = Vec::with_capacity(m);
    for v in core..n {
        picked.clear();
        while picked.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((t, v as u32));
            endpoints.push(t);
            endpoints.push(v as u32);
        }
    }
    edges
}

/// Per-node degrees of an edge list over `0..n`.
pub fn degrees(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut d = vec![0u32; n];
    for &(a, b) in edges {
        d[a as usize] += 1;
        d[b as usize] += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_a_seed() {
        assert_eq!(barabasi_albert(500, 3, 7), barabasi_albert(500, 3, 7));
        assert_ne!(barabasi_albert(500, 3, 7), barabasi_albert(500, 3, 8));
    }

    #[test]
    fn edges_are_simple_and_count_right() {
        let n = 1000;
        let m = 4;
        let edges = barabasi_albert(n, m, 42);
        let mut seen = HashSet::new();
        for &(a, b) in &edges {
            assert_ne!(a, b, "self-loop");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "parallel edge {key:?}");
            assert!((a as usize) < n && (b as usize) < n);
        }
        // Clique on m+1 nodes, then m edges per arrival.
        assert_eq!(edges.len(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn graph_is_connected() {
        let n = 2000;
        let edges = barabasi_albert(n, 2, 9);
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "BA graph must be connected");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let n = 5000;
        let m = 3;
        let d = degrees(n, &barabasi_albert(n, m, 11));
        let mean = d.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let max = *d.iter().max().unwrap() as f64;
        // Mean degree ≈ 2m; a scale-free hub towers over it (a random
        // regular graph would have max ≈ mean).
        assert!((mean - 2.0 * m as f64).abs() < 0.5, "mean degree {mean}");
        assert!(max > 10.0 * mean, "no hub emerged: max {max} vs mean {mean}");
        // Leaves keep the attachment floor.
        assert!(d.iter().all(|&x| x >= m as u32));
    }
}
