//! Property-based boundedness: after an arbitrary interleaving of
//! announcements, hostile messages, timer fires, queue pressure and
//! crash/restore cycles, every capped per-peer structure respects its cap
//! and the accounted memory total stays under the configured ceiling.

use graphene::GrapheneConfig;
use graphene_blockchain::{Block, Mempool, OrderingScheme, Transaction};
use graphene_bloom::BloomFilter;
use graphene_hashes::Digest;
use graphene_netsim::peer::{Peer, ANN_FLAG};
use graphene_netsim::{PeerId, RelayProtocol, ResourceLimits, SimTime};
use graphene_wire::messages::{BlockTxnMsg, InvMsg, Message, TxInvMsg, XthinGetDataMsg};
use graphene_wire::Encode;
use proptest::prelude::*;

/// Tight caps so random interleavings actually hit every limit.
fn tight_limits() -> ResourceLimits {
    ResourceLimits {
        max_sessions: 4,
        max_pending_announcements: 3,
        max_body_bytes: 64,
        max_misbehavior_entries: 3,
        max_queue_frames: 5,
        max_queue_bytes: 4096,
        max_encode_cache_bytes: 4096,
        max_rateless_state_bytes: 4096,
        proc_delay_per_frame: SimTime::ZERO,
        proc_delay_per_kb: SimTime::ZERO,
    }
}

fn block_id(tag: u8) -> Digest {
    block_for(tag).id()
}

fn block_for(tag: u8) -> Block {
    let txns = vec![Transaction::new(vec![tag, 1]), Transaction::new(vec![tag, 2])];
    Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor)
}

/// One step of the interleaving, decoded from `(op, a, b)` bytes.
fn apply_op(p: &mut Peer, op: u8, a: u8, b: u8) {
    let from = PeerId(1 + (a as usize % 7));
    let neighbors = [PeerId(1), PeerId(2), PeerId(3)];
    match op % 8 {
        // A block announcement (possibly a repeat).
        0 => {
            p.handle(from, Message::Inv(InvMsg { block_id: block_id(b % 10) }), &neighbors);
        }
        // Loose-tx announcements.
        1 => {
            let txids = vec![*Transaction::new(vec![b, 3]).id()];
            p.handle(from, Message::TxInv(TxInvMsg { txids }), &neighbors);
        }
        // Repair bodies for a (maybe-open) session: exercises orphan caps.
        2 => {
            let txns: Vec<Transaction> =
                (0..4).map(|i| Transaction::new(vec![b, i, 9, 9, 9, 9])).collect();
            p.handle(
                from,
                Message::BlockTxn(BlockTxnMsg { block_id: block_id(b % 10), txns }),
                &neighbors,
            );
        }
        // A provable §6.2 cap violation: drives misbehavior/ban growth.
        3 => {
            let hostile = Message::XthinGetData(XthinGetDataMsg {
                block_id: block_id(b % 10),
                mempool_filter: BloomFilter::new(75_000, 0.001, 7),
            });
            p.handle(from, hostile, &neighbors);
        }
        // Session and announcement timers, current and stale epochs.
        4 => {
            p.handle_timeout(block_id(b % 10), (a % 4) as u32);
        }
        5 => {
            p.handle_timeout(block_id(b % 10), (a % 4) as u32 | ANN_FLAG);
        }
        // Raw queue pressure (frames awaiting a drain that never comes).
        6 => {
            let msg = Message::Inv(InvMsg { block_id: block_id(b % 10) });
            let bytes = msg.to_vec().len();
            p.enqueue(from, msg, bytes);
        }
        // Crash/restore mid-interleaving.
        _ => {
            let snap = p.snapshot();
            p.restore(snap);
        }
    }
}

fn assert_bounded(p: &Peer, limits: &ResourceLimits) -> Result<(), TestCaseError> {
    let acct = p.accounting();
    prop_assert!(p.open_sessions() <= limits.max_sessions, "sessions {}", p.open_sessions());
    prop_assert!(
        p.pending_announcement_count() <= limits.max_pending_announcements,
        "pending {}",
        p.pending_announcement_count()
    );
    prop_assert!(
        p.misbehavior_entries() <= limits.max_misbehavior_entries,
        "misbehavior {}",
        p.misbehavior_entries()
    );
    prop_assert!(acct.queue_frames <= limits.max_queue_frames, "queue {}", acct.queue_frames);
    prop_assert!(acct.queue_bytes <= limits.max_queue_bytes);
    prop_assert!(
        acct.body_bytes <= limits.max_body_bytes * limits.max_sessions as u64,
        "bodies {}",
        acct.body_bytes
    );
    prop_assert!(
        acct.accounted_bytes() <= limits.accounted_ceiling(),
        "accounted {} over ceiling {}",
        acct.accounted_bytes(),
        limits.accounted_ceiling()
    );
    prop_assert!(acct.hwm_bytes <= limits.accounted_ceiling());
    Ok(())
}

proptest! {
    /// Caps hold after every step of an arbitrary interleaving, not just
    /// at the end. Ops are drawn as a flat byte tape: 3 bytes per step.
    #[test]
    fn peer_state_stays_bounded(
        tape in proptest::collection::vec(any::<u8>(), 3..360),
    ) {
        let limits = tight_limits();
        let mut p = Peer::new(
            PeerId(0),
            RelayProtocol::Graphene(GrapheneConfig::default()),
            Mempool::new(),
        );
        p.limits = limits;
        for step in tape.chunks_exact(3) {
            apply_op(&mut p, step[0], step[1], step[2]);
            assert_bounded(&p, &limits)?;
        }
    }

    /// The same holds when the peer also *originates* blocks (the
    /// announcement-tracking side of the ledger).
    #[test]
    fn originator_state_stays_bounded(
        tags in proptest::collection::vec(any::<u8>(), 1..40),
        tape in proptest::collection::vec(any::<u8>(), 3..180),
    ) {
        let limits = tight_limits();
        let mut p = Peer::new(
            PeerId(0),
            RelayProtocol::Graphene(GrapheneConfig::default()),
            Mempool::new(),
        );
        p.limits = limits;
        for t in tags {
            p.originate(block_for(t % 16), &[PeerId(1), PeerId(2)]);
        }
        assert_bounded(&p, &limits)?;
        for step in tape.chunks_exact(3) {
            apply_op(&mut p, step[0], step[1], step[2]);
            assert_bounded(&p, &limits)?;
        }
    }
}
