//! Property-based equivalence of the timing-wheel scheduler against the
//! retained binary-heap reference.
//!
//! The determinism contract — pop strictly ascending `(at, seq)`,
//! past-time schedules clamped to `now` and reported — is what makes
//! sweep CSVs byte-identical across thread counts, so the wheel must
//! reproduce the heap *exactly*: same pop order, same clamp decisions,
//! same clock, under any interleaving of schedules and pops. The
//! generated schedules deliberately cover the wheel's internal seams:
//! sub-millisecond offsets inside one slot, ties in the same slot,
//! past-time clamps, the 256-slot near epoch, the 65.536 s overflow
//! window, and far-future events beyond both.

use graphene_netsim::event::{Event, EventQueue, ReferenceQueue};
use graphene_netsim::peer::PeerId;
use graphene_netsim::SimTime;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt};

/// One step of an interleaving: schedule a tagged event at a relative
/// offset (possibly behind the clock), or pop the next event.
#[derive(Debug, Clone)]
enum Op {
    Schedule { offset_us: i64, tag: usize },
    Pop,
}

/// Draws ops with offsets stressing every routing tier of the wheel:
/// the current slot (<1 ms), the near wheel (<256 ms), the overflow
/// wheel (<65.536 s), the far list (beyond), and negative offsets that
/// must clamp. A third of the draws are pops so the clock advances and
/// later schedules land relative to a moving cursor.
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;

    fn generate(&self, rng: &mut StdRng) -> Op {
        let offset_us = match rng.random_range(0u32..9) {
            0..=2 => return Op::Pop,
            3 => -rng.random_range(1i64..2_000_000),
            4 => rng.random_range(0i64..1_000),
            5 => rng.random_range(0i64..256_000),
            6 => rng.random_range(0i64..65_536_000),
            _ => rng.random_range(0i64..200_000_000),
        };
        Op::Schedule { offset_us, tag: rng.random_range(0usize..1000) }
    }
}

/// Tagged event cheap enough to schedule by the thousand.
fn tagged(tag: usize) -> Event {
    Event::Drain { peer: PeerId(tag) }
}

fn tag_of(ev: &Event) -> usize {
    match ev {
        Event::Drain { peer } => peer.0,
        other => panic!("unexpected event popped: {other:?}"),
    }
}

proptest! {
    #[test]
    fn wheel_pops_exactly_like_the_heap(ops in proptest::collection::vec(OpStrategy, 1..250)) {
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceQueue::new();
        for op in &ops {
            match *op {
                Op::Schedule { offset_us, tag } => {
                    // Offsets are relative to the shared clock so pops
                    // steer where later schedules land.
                    let now = wheel.now().as_micros() as i64;
                    let at = SimTime::from_micros((now + offset_us).max(0) as u64);
                    let w = wheel.schedule(at, tagged(tag));
                    let h = heap.schedule(at, tagged(tag));
                    prop_assert_eq!(w, h, "clamp decision diverged at {:?}", at);
                }
                Op::Pop => {
                    let w = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
                    let h = heap.pop().map(|(t, ev)| (t, tag_of(&ev)));
                    prop_assert_eq!(w, h, "pop diverged");
                    prop_assert_eq!(wheel.now(), heap.now(), "clock diverged");
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "length diverged");
        }
        // Drain both to the end: the tail covers cascades armed by the
        // interleaving but never reached by its pops.
        loop {
            let w = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
            let h = heap.pop().map(|(t, ev)| (t, tag_of(&ev)));
            prop_assert_eq!(w, h, "drain diverged");
            if h.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.clamped(), heap.clamped(), "clamp totals diverged");
    }
}
