//! Encode/decode traits and the wire error type.

use bytes::{Buf, BufMut};
use core::fmt;

/// Errors raised while decoding hostile or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// A varint used a longer encoding than necessary.
    NonCanonical,
    /// A structurally invalid value (bad tag, inconsistent lengths, ...).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of buffer"),
            WireError::NonCanonical => write!(f, "non-canonical varint"),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialize into a growable buffer.
pub trait Encode {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Exact number of bytes [`Encode::encode`] will append.
    fn encoded_len(&self) -> usize;

    /// Encode into a fresh vector.
    fn to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len(), "encoded_len out of sync");
        buf
    }

    /// Encode into a reusable buffer: clears `buf`, reserves the exact
    /// length, then appends. Hot paths (netsim's dispatcher) keep one buffer
    /// alive across frames instead of allocating per [`Encode::to_vec`].
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.encoded_len());
        self.encode(buf);
        debug_assert_eq!(buf.len(), self.encoded_len(), "encoded_len out of sync");
    }
}

/// Deserialize from a byte cursor.
pub trait Decode: Sized {
    /// Read one value, advancing `buf`.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Decode a value that must consume the entire buffer.
    fn decode_exact(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError::Invalid("trailing bytes"));
        }
        Ok(v)
    }
}

/// Checked fixed-size reads over `&[u8]` cursors.
pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.remaining() < n {
        return Err(WireError::UnexpectedEnd);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    Ok(take(buf, 1)?[0])
}

pub(crate) fn get_u32_le(buf: &mut &[u8]) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().expect("4 bytes")))
}

pub(crate) fn get_u64_le(buf: &mut &[u8]) -> Result<u64, WireError> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().expect("8 bytes")))
}

/// Append helpers mirroring the getters.
pub(crate) fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.put_u32_le(v);
}

pub(crate) fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.put_u64_le(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_respects_bounds() {
        let data = [1u8, 2, 3];
        let mut cur = &data[..];
        assert_eq!(take(&mut cur, 2).unwrap(), &[1, 2]);
        assert_eq!(take(&mut cur, 2), Err(WireError::UnexpectedEnd));
        assert_eq!(take(&mut cur, 1).unwrap(), &[3]);
    }

    #[test]
    fn primitive_getters() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xdead_beef);
        put_u64_le(&mut buf, 42);
        let mut cur = buf.as_slice();
        assert_eq!(get_u32_le(&mut cur).unwrap(), 0xdead_beef);
        assert_eq!(get_u64_le(&mut cur).unwrap(), 42);
        assert_eq!(get_u8(&mut cur), Err(WireError::UnexpectedEnd));
    }
}
