//! Wire encodings for the probabilistic structures (Bloom filter, IBLT).

use crate::codec::{
    get_u32_le, get_u64_le, get_u8, put_u32_le, put_u64_le, take, Decode, Encode, WireError,
};
use graphene_bloom::{bitvec::BitVec, BloomFilter, HashStrategy, Membership};
use graphene_iblt::Iblt;

/// Flag byte values for the Bloom filter encoding.
const BLOOM_MATCH_ALL: u8 = 1;
const BLOOM_DOUBLE: u8 = 0;
const BLOOM_KPIECE: u8 = 2;

impl Encode for BloomFilter {
    fn encode(&self, buf: &mut Vec<u8>) {
        if self.bit_len() == 0 {
            buf.push(BLOOM_MATCH_ALL);
            return;
        }
        buf.push(match self.strategy() {
            HashStrategy::DoubleHashing => BLOOM_DOUBLE,
            HashStrategy::KPiece => BLOOM_KPIECE,
        });
        put_u32_le(buf, self.bit_len() as u32);
        buf.push(self.hash_count() as u8);
        put_u64_le(buf, self.salt());
        // Append directly — no temporary byte vector per encode.
        self.bit_vec().write_bytes(buf);
    }

    fn encoded_len(&self) -> usize {
        // Kept in lock-step with `Membership::serialized_size`.
        self.serialized_size()
    }
}

impl Decode for BloomFilter {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let flags = get_u8(buf)?;
        match flags {
            BLOOM_MATCH_ALL => Ok(BloomFilter::new(1, 1.0, 0)),
            BLOOM_DOUBLE | BLOOM_KPIECE => {
                let nbits = get_u32_le(buf)? as usize;
                let k = get_u8(buf)? as u32;
                if k == 0 || nbits == 0 {
                    return Err(WireError::Invalid("bloom: zero bits or hashes"));
                }
                let salt = get_u64_le(buf)?;
                let data = take(buf, nbits.div_ceil(8))?;
                let bits = BitVec::from_bytes(data, nbits)
                    .ok_or(WireError::Invalid("bloom: short bit array"))?;
                let strategy = if flags == BLOOM_KPIECE {
                    HashStrategy::KPiece
                } else {
                    HashStrategy::DoubleHashing
                };
                Ok(BloomFilter::from_parts(bits, k, 0.0, salt, strategy))
            }
            _ => Err(WireError::Invalid("bloom: unknown flag byte")),
        }
    }
}

/// Newtype so we can implement the wire traits for IBLTs using their
/// existing byte format.
pub struct WireIblt(pub Iblt);

impl Encode for WireIblt {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.write_bytes(buf);
    }

    fn encoded_len(&self) -> usize {
        self.0.serialized_size()
    }
}

impl Decode for WireIblt {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        // Read the header to learn the length, then slice exactly.
        if buf.len() < graphene_iblt::HEADER_BYTES {
            return Err(WireError::UnexpectedEnd);
        }
        let ncells = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
        let total = graphene_iblt::HEADER_BYTES + ncells * graphene_iblt::CELL_BYTES;
        let body = take(buf, total)?;
        Iblt::from_bytes(body)
            .map(WireIblt)
            .ok_or(WireError::Invalid("iblt: malformed header or body"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    #[test]
    fn bloom_roundtrip_preserves_membership() {
        let ids: Vec<_> = (0u64..300).map(|i| sha256(&i.to_le_bytes())).collect();
        let mut f = BloomFilter::new(ids.len(), 0.02, 99);
        for id in &ids {
            f.insert(id);
        }
        let bytes = f.to_vec();
        assert_eq!(bytes.len(), f.serialized_size());
        let g = BloomFilter::decode_exact(&bytes).unwrap();
        // Decoded filter answers identically for members and probes.
        for id in &ids {
            assert!(g.contains(id));
        }
        let probes: Vec<_> = (1000u64..1400).map(|i| sha256(&i.to_le_bytes())).collect();
        for id in &probes {
            assert_eq!(f.contains(id), g.contains(id));
        }
    }

    #[test]
    fn bloom_match_all_roundtrip() {
        let f = BloomFilter::new(10, 1.0, 0);
        let bytes = f.to_vec();
        assert_eq!(bytes, vec![BLOOM_MATCH_ALL]);
        let g = BloomFilter::decode_exact(&bytes).unwrap();
        assert!(g.contains(&sha256(b"anything")));
    }

    #[test]
    fn bloom_rejects_garbage() {
        assert!(BloomFilter::decode_exact(&[9]).is_err());
        assert!(BloomFilter::decode_exact(&[]).is_err());
        // Valid flag but truncated body.
        let ids: Vec<_> = (0u64..50).map(|i| sha256(&i.to_le_bytes())).collect();
        let mut f = BloomFilter::new(ids.len(), 0.1, 1);
        for id in &ids {
            f.insert(id);
        }
        let bytes = f.to_vec();
        assert!(BloomFilter::decode_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn iblt_roundtrip() {
        let mut t = Iblt::new(30, 3, 5);
        for v in 0..10u64 {
            t.insert(v);
        }
        let w = WireIblt(t.clone());
        let bytes = w.to_vec();
        assert_eq!(bytes.len(), w.encoded_len());
        let back = WireIblt::decode_exact(&bytes).unwrap();
        assert_eq!(back.0, t);
    }

    #[test]
    fn iblt_rejects_truncation() {
        let t = Iblt::new(12, 3, 0);
        let bytes = WireIblt(t).to_vec();
        assert!(WireIblt::decode_exact(&bytes[..bytes.len() - 3]).is_err());
    }
}
