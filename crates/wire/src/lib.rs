//! Wire protocol: exact byte encodings for every message in the suite.
//!
//! The paper's evaluation is entirely about *bytes on the wire*, so the
//! encodings here are real, not estimated: every figure's "encoding size" is
//! the length of the buffer these codecs produce. The message set covers
//! Graphene Protocols 1 and 2 (per the public BUIP093-style network spec),
//! Compact Blocks (BIP152), XThin (BUIP010), and plain inv/getdata/full-
//! block relay.
//!
//! Framing follows the guides' idiom: length-prefixed frames over
//! `bytes::{Buf, BufMut}`, with checked decoding that never panics on
//! truncated or hostile input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod filters;
pub mod messages;
pub mod varint;

pub use codec::{Decode, Encode, WireError};
pub use messages::Message;
pub use varint::{read_varint, varint_len, write_varint};
