//! Message set for block relay: Graphene, Compact Blocks, XThin, full blocks.
//!
//! Every message knows its exact encoded length; the evaluation figures sum
//! these lengths. Frames are `[type: u8][length: u32 LE][body]` so a stream
//! reader can skip unknown messages — the framing idiom from the networking
//! guides.

use crate::codec::{
    get_u32_le, get_u64_le, get_u8, put_u32_le, put_u64_le, take, Decode, Encode, WireError,
};
use crate::filters::WireIblt;
use crate::varint::{read_varint, varint_len, write_varint};
use graphene_blockchain::{Header, Transaction};
use graphene_bloom::BloomFilter;
use graphene_hashes::Digest;
use graphene_iblt::Iblt;

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

fn encode_digest(buf: &mut Vec<u8>, d: &Digest) {
    buf.extend_from_slice(d.as_ref());
}

fn decode_digest(buf: &mut &[u8]) -> Result<Digest, WireError> {
    Ok(Digest(take(buf, 32)?.try_into().expect("32 bytes")))
}

fn encode_tx(buf: &mut Vec<u8>, tx: &Transaction) {
    write_varint(buf, tx.size() as u64);
    buf.extend_from_slice(tx.payload());
}

fn decode_tx(buf: &mut &[u8]) -> Result<Transaction, WireError> {
    let len = read_varint(buf)? as usize;
    if len > 4_000_000 {
        return Err(WireError::Invalid("transaction too large"));
    }
    Ok(Transaction::new(take(buf, len)?.to_vec()))
}

fn tx_len(tx: &Transaction) -> usize {
    varint_len(tx.size() as u64) + tx.size()
}

fn encode_txns(buf: &mut Vec<u8>, txns: &[Transaction]) {
    write_varint(buf, txns.len() as u64);
    for tx in txns {
        encode_tx(buf, tx);
    }
}

fn decode_txns(buf: &mut &[u8]) -> Result<Vec<Transaction>, WireError> {
    let count = read_varint(buf)? as usize;
    if count > 1_000_000 {
        return Err(WireError::Invalid("absurd transaction count"));
    }
    let mut txns = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        txns.push(decode_tx(buf)?);
    }
    Ok(txns)
}

fn txns_len(txns: &[Transaction]) -> usize {
    varint_len(txns.len() as u64) + txns.iter().map(tx_len).sum::<usize>()
}

fn encode_header(buf: &mut Vec<u8>, h: &Header) {
    buf.extend_from_slice(&h.to_bytes());
}

fn decode_header(buf: &mut &[u8]) -> Result<Header, WireError> {
    Ok(Header::from_bytes(take(buf, 80)?.try_into().expect("80 bytes")))
}

// ---------------------------------------------------------------------------
// Message bodies
// ---------------------------------------------------------------------------

/// Announce a new block (`inv`). Real clients often send the header instead;
/// we account the conservative 32-byte form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvMsg {
    /// ID of the announced block.
    pub block_id: Digest,
}

/// Request a block. Graphene's getdata carries the receiver's mempool size
/// `m` (Protocol 1 step 2); other protocols ignore the field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetDataMsg {
    /// Which block is requested.
    pub block_id: Digest,
    /// Receiver's mempool transaction count (`m`).
    pub mempool_count: u64,
}

/// Graphene Protocol 1 step 3: header, Bloom filter `S`, IBLT `I`, and any
/// transactions the sender knows the receiver lacks (per-peer inv tracking).
#[derive(Clone, Debug)]
pub struct GrapheneBlockMsg {
    /// Block header (carries the Merkle commitment).
    pub header: Header,
    /// Number of transactions in the block (`n`).
    pub block_tx_count: u64,
    /// Sender's Bloom filter over the block's full txids.
    pub bloom_s: BloomFilter,
    /// Sender's IBLT over the block's 8-byte short IDs.
    pub iblt_i: Iblt,
    /// Transactions proactively included (never inv'd to this peer).
    pub prefilled: Vec<Transaction>,
    /// Explicit ordering permutation (empty under CTOR, `⌈n·log2 n⌉` bits
    /// otherwise — §6.2).
    pub order_bytes: Vec<u8>,
}

/// Graphene Protocol 2 step 2: the receiver's Bloom filter `R` plus the
/// bounds the sender needs to size IBLT `J`.
#[derive(Clone, Debug)]
pub struct GrapheneRequestMsg {
    /// Which block this recovery round is for.
    pub block_id: Digest,
    /// Receiver's Bloom filter over its candidate set `Z`.
    pub bloom_r: BloomFilter,
    /// β-assurance bound `y*` on false positives through `S`.
    pub y_star: u64,
    /// The receiver's chosen `b` (expected false positives through `R`).
    pub b: u64,
    /// Set when the `m ≈ n` special case is in effect (§3.3.1): the sender
    /// must respond with a third filter `F` and solve the bounds itself.
    pub special_mn: bool,
}

/// Graphene Protocol 2 steps 3–4: transactions that failed `R`, the IBLT
/// `J`, and (in the `m ≈ n` special case) the compensating filter `F`.
#[derive(Clone, Debug)]
pub struct GrapheneRecoveryMsg {
    /// Which block this recovery round is for.
    pub block_id: Digest,
    /// Block transactions that did not pass `R` (definitely missing).
    pub missing: Vec<Transaction>,
    /// IBLT over the block's short IDs, sized for `b + y*`.
    pub iblt_j: Iblt,
    /// Filter over the `n - h` passing transactions (`m ≈ n` case only).
    pub bloom_f: Option<BloomFilter>,
}

/// BIP152 `cmpctblock`: 6-byte SipHash short IDs plus prefilled txns.
#[derive(Clone, Debug)]
pub struct CmpctBlockMsg {
    /// Block header.
    pub header: Header,
    /// Nonce from which the per-block SipHash key is derived.
    pub nonce: u64,
    /// 6-byte short IDs in block order.
    pub short_ids: Vec<u64>,
    /// Prefilled (index, transaction) pairs — at least the coinbase.
    pub prefilled: Vec<(u64, Transaction)>,
}

/// BIP152 `getblocktxn`: differentially varint-encoded indexes of missing
/// transactions (1–3 bytes each, as the paper's comparison assumes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetBlockTxnMsg {
    /// Which block.
    pub block_id: Digest,
    /// Absolute indexes of requested transactions, ascending.
    pub indexes: Vec<u64>,
}

/// BIP152 `blocktxn`: the requested transactions.
#[derive(Clone, Debug)]
pub struct BlockTxnMsg {
    /// Which block.
    pub block_id: Digest,
    /// The transactions, in request order.
    pub txns: Vec<Transaction>,
}

/// XThin `get_xthin`: request carrying a Bloom filter of the receiver's
/// mempool txids.
#[derive(Clone, Debug)]
pub struct XthinGetDataMsg {
    /// Which block.
    pub block_id: Digest,
    /// Bloom filter over the receiver's mempool.
    pub mempool_filter: BloomFilter,
}

/// XThin `xthinblock`: 8-byte short IDs for everything, plus full
/// transactions for whatever missed the receiver's filter.
#[derive(Clone, Debug)]
pub struct XthinBlockMsg {
    /// Block header.
    pub header: Header,
    /// 8-byte short IDs in block order.
    pub short_ids: Vec<u64>,
    /// Transactions that did not match the receiver's mempool filter.
    pub missing: Vec<Transaction>,
}

/// A full serialized block (the no-compression baseline).
#[derive(Clone, Debug)]
pub struct FullBlockMsg {
    /// Block header.
    pub header: Header,
    /// Every transaction, in block order.
    pub txns: Vec<Transaction>,
}

/// Announce transactions by ID (`inv` for loose transactions, §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxInvMsg {
    /// Announced transaction IDs.
    pub txids: Vec<Digest>,
}

/// Request announced transactions by ID.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetTxnsMsg {
    /// Wanted transaction IDs.
    pub txids: Vec<Digest>,
}

/// Deliver loose transactions.
#[derive(Clone, Debug)]
pub struct TxnsMsg {
    /// The transactions.
    pub txns: Vec<Transaction>,
}

/// Graphene extra-fetch: request transactions by 8-byte short ID (the `R`
/// false positives of Protocol 2 whose bodies the receiver lacks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetGrapheneTxnMsg {
    /// Which block.
    pub block_id: Digest,
    /// Short IDs of the wanted transactions.
    pub short_ids: Vec<u64>,
}

/// Fallback: request the uncompressed block (after repeated relay failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetFullBlockMsg {
    /// Which block.
    pub block_id: Digest,
}

/// Recovery-ladder rung 2: re-request a Graphene encoding with inflated
/// parameters (fresh salts, decayed β, larger IBLT). `attempt` tells the
/// sender which inflation step to apply; the receiver refreshes `m` since
/// its mempool may have grown since the original `getdata`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetGrapheneRetryMsg {
    /// Which block.
    pub block_id: Digest,
    /// Receiver's current mempool transaction count (`m`).
    pub mempool_count: u64,
    /// 1-based retry attempt the sender should inflate for.
    pub attempt: u32,
}

/// Rateless-IBLT rung: one window of the sender's unbounded coded-cell
/// stream for a block (arXiv 2402.02668 index-mapped hashing). The stream
/// is a pure function of `(salt, block short IDs)`, so the sender can
/// regenerate any window statelessly; `start_index` says where this window
/// sits and the receiver only accepts the window it asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatelessCellsMsg {
    /// Which block.
    pub block_id: Digest,
    /// Codec salt the cells (and their checksums) are keyed by. Derived
    /// deterministically from the block ID, so the receiver can verify it.
    pub salt: u64,
    /// Stream index of the first cell in this window.
    pub start_index: u64,
    /// The coded cells.
    pub cells: Vec<graphene_iblt::Cell>,
}

/// Request the next window of rateless coded cells for a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetMoreCellsMsg {
    /// Which block.
    pub block_id: Digest,
    /// Stream index to resume from (== cells received so far).
    pub from_index: u64,
    /// How many cells to send.
    pub count: u32,
}

// ---------------------------------------------------------------------------
// The envelope
// ---------------------------------------------------------------------------

/// Any relay message, taggable onto a framed stream.
#[derive(Clone, Debug)]
pub enum Message {
    /// Block announcement.
    Inv(InvMsg),
    /// Block request (+ mempool count for Graphene).
    GetData(GetDataMsg),
    /// Graphene Protocol 1 payload.
    GrapheneBlock(GrapheneBlockMsg),
    /// Graphene Protocol 2 request.
    GrapheneRequest(GrapheneRequestMsg),
    /// Graphene Protocol 2 response.
    GrapheneRecovery(GrapheneRecoveryMsg),
    /// BIP152 compact block.
    CmpctBlock(CmpctBlockMsg),
    /// BIP152 missing-transaction request.
    GetBlockTxn(GetBlockTxnMsg),
    /// BIP152 missing-transaction response.
    BlockTxn(BlockTxnMsg),
    /// XThin request with mempool filter.
    XthinGetData(XthinGetDataMsg),
    /// XThin block payload.
    XthinBlock(XthinBlockMsg),
    /// Uncompressed block.
    FullBlock(FullBlockMsg),
    /// Graphene extra-fetch by short ID.
    GetGrapheneTxn(GetGrapheneTxnMsg),
    /// Fallback full-block request.
    GetFullBlock(GetFullBlockMsg),
    /// Inflated-parameter Graphene re-request (recovery ladder).
    GetGrapheneRetry(GetGrapheneRetryMsg),
    /// Rateless coded-cell window (recovery ladder's rateless rung).
    RatelessCells(RatelessCellsMsg),
    /// Request the next rateless coded-cell window.
    GetMoreCells(GetMoreCellsMsg),
    /// Loose-transaction announcement.
    TxInv(TxInvMsg),
    /// Loose-transaction request.
    GetTxns(GetTxnsMsg),
    /// Loose-transaction delivery.
    Txns(TxnsMsg),
}

impl Message {
    /// Frame type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Message::Inv(_) => 0x01,
            Message::GetData(_) => 0x02,
            Message::GrapheneBlock(_) => 0x10,
            Message::GrapheneRequest(_) => 0x11,
            Message::GrapheneRecovery(_) => 0x12,
            Message::CmpctBlock(_) => 0x20,
            Message::GetBlockTxn(_) => 0x21,
            Message::BlockTxn(_) => 0x22,
            Message::XthinGetData(_) => 0x30,
            Message::XthinBlock(_) => 0x31,
            Message::FullBlock(_) => 0x40,
            Message::GetGrapheneTxn(_) => 0x13,
            Message::GetGrapheneRetry(_) => 0x14,
            Message::RatelessCells(_) => 0x15,
            Message::GetMoreCells(_) => 0x16,
            Message::GetFullBlock(_) => 0x42,
            Message::TxInv(_) => 0x03,
            Message::GetTxns(_) => 0x04,
            Message::Txns(_) => 0x05,
        }
    }

    /// Body length (excluding the 5-byte frame header).
    pub fn body_len(&self) -> usize {
        match self {
            Message::Inv(_) => 32,
            Message::GetData(m) => 32 + varint_len(m.mempool_count),
            Message::GrapheneBlock(m) => {
                80 + varint_len(m.block_tx_count)
                    + m.bloom_s.encoded_len()
                    + m.iblt_i.serialized_size()
                    + txns_len(&m.prefilled)
                    + varint_len(m.order_bytes.len() as u64)
                    + m.order_bytes.len()
            }
            Message::GrapheneRequest(m) => {
                32 + m.bloom_r.encoded_len() + varint_len(m.y_star) + varint_len(m.b) + 1
            }
            Message::GrapheneRecovery(m) => {
                32 + txns_len(&m.missing)
                    + m.iblt_j.serialized_size()
                    + 1
                    + m.bloom_f.as_ref().map_or(0, Encode::encoded_len)
            }
            Message::CmpctBlock(m) => {
                80 + 8
                    + varint_len(m.short_ids.len() as u64)
                    + 6 * m.short_ids.len()
                    + varint_len(m.prefilled.len() as u64)
                    + m.prefilled.iter().map(|(i, tx)| varint_len(*i) + tx_len(tx)).sum::<usize>()
            }
            Message::GetBlockTxn(m) => {
                32 + varint_len(m.indexes.len() as u64)
                    + diff_indexes(&m.indexes).map(varint_len).sum::<usize>()
            }
            Message::BlockTxn(m) => 32 + txns_len(&m.txns),
            Message::XthinGetData(m) => 32 + m.mempool_filter.encoded_len(),
            Message::XthinBlock(m) => {
                80 + varint_len(m.short_ids.len() as u64)
                    + 8 * m.short_ids.len()
                    + txns_len(&m.missing)
            }
            Message::FullBlock(m) => 80 + txns_len(&m.txns),
            Message::GetGrapheneTxn(m) => {
                32 + varint_len(m.short_ids.len() as u64) + 8 * m.short_ids.len()
            }
            Message::GetFullBlock(_) => 32,
            Message::GetGrapheneRetry(m) => {
                32 + varint_len(m.mempool_count) + varint_len(m.attempt as u64)
            }
            Message::RatelessCells(m) => {
                32 + 8 + 8 + varint_len(m.cells.len() as u64) + 16 * m.cells.len()
            }
            Message::GetMoreCells(m) => 32 + 8 + varint_len(m.count as u64),
            Message::TxInv(m) => varint_len(m.txids.len() as u64) + 32 * m.txids.len(),
            Message::GetTxns(m) => varint_len(m.txids.len() as u64) + 32 * m.txids.len(),
            Message::Txns(m) => txns_len(&m.txns),
        }
    }

    /// Total frame size on the wire (type byte + length + body).
    pub fn wire_size(&self) -> usize {
        5 + self.body_len()
    }
}

/// Differential encoding of ascending indexes (BIP152): first index as-is,
/// then gaps minus one.
fn diff_indexes(indexes: &[u64]) -> impl Iterator<Item = u64> + '_ {
    indexes.iter().enumerate().map(
        |(pos, &idx)| {
            if pos == 0 {
                idx
            } else {
                idx - indexes[pos - 1] - 1
            }
        },
    )
}

impl Encode for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.type_byte());
        put_u32_le(buf, self.body_len() as u32);
        match self {
            Message::Inv(m) => encode_digest(buf, &m.block_id),
            Message::GetData(m) => {
                encode_digest(buf, &m.block_id);
                write_varint(buf, m.mempool_count);
            }
            Message::GrapheneBlock(m) => {
                encode_header(buf, &m.header);
                write_varint(buf, m.block_tx_count);
                m.bloom_s.encode(buf);
                // Serialize in place — no clone of the cell array per encode.
                m.iblt_i.write_bytes(buf);
                encode_txns(buf, &m.prefilled);
                write_varint(buf, m.order_bytes.len() as u64);
                buf.extend_from_slice(&m.order_bytes);
            }
            Message::GrapheneRequest(m) => {
                encode_digest(buf, &m.block_id);
                m.bloom_r.encode(buf);
                write_varint(buf, m.y_star);
                write_varint(buf, m.b);
                buf.push(m.special_mn as u8);
            }
            Message::GrapheneRecovery(m) => {
                encode_digest(buf, &m.block_id);
                encode_txns(buf, &m.missing);
                m.iblt_j.write_bytes(buf);
                match &m.bloom_f {
                    Some(f) => {
                        buf.push(1);
                        f.encode(buf);
                    }
                    None => buf.push(0),
                }
            }
            Message::CmpctBlock(m) => {
                encode_header(buf, &m.header);
                put_u64_le(buf, m.nonce);
                write_varint(buf, m.short_ids.len() as u64);
                for id in &m.short_ids {
                    buf.extend_from_slice(&id.to_le_bytes()[..6]);
                }
                write_varint(buf, m.prefilled.len() as u64);
                for (i, tx) in &m.prefilled {
                    write_varint(buf, *i);
                    encode_tx(buf, tx);
                }
            }
            Message::GetBlockTxn(m) => {
                encode_digest(buf, &m.block_id);
                write_varint(buf, m.indexes.len() as u64);
                for gap in diff_indexes(&m.indexes) {
                    write_varint(buf, gap);
                }
            }
            Message::BlockTxn(m) => {
                encode_digest(buf, &m.block_id);
                encode_txns(buf, &m.txns);
            }
            Message::XthinGetData(m) => {
                encode_digest(buf, &m.block_id);
                m.mempool_filter.encode(buf);
            }
            Message::XthinBlock(m) => {
                encode_header(buf, &m.header);
                write_varint(buf, m.short_ids.len() as u64);
                for id in &m.short_ids {
                    buf.extend_from_slice(&id.to_le_bytes());
                }
                encode_txns(buf, &m.missing);
            }
            Message::FullBlock(m) => {
                encode_header(buf, &m.header);
                encode_txns(buf, &m.txns);
            }
            Message::GetGrapheneTxn(m) => {
                encode_digest(buf, &m.block_id);
                write_varint(buf, m.short_ids.len() as u64);
                for id in &m.short_ids {
                    buf.extend_from_slice(&id.to_le_bytes());
                }
            }
            Message::GetFullBlock(m) => encode_digest(buf, &m.block_id),
            Message::GetGrapheneRetry(m) => {
                encode_digest(buf, &m.block_id);
                write_varint(buf, m.mempool_count);
                write_varint(buf, m.attempt as u64);
            }
            Message::RatelessCells(m) => {
                encode_digest(buf, &m.block_id);
                put_u64_le(buf, m.salt);
                put_u64_le(buf, m.start_index);
                write_varint(buf, m.cells.len() as u64);
                for c in &m.cells {
                    put_u32_le(buf, c.count as u32);
                    put_u64_le(buf, c.key_sum);
                    put_u32_le(buf, c.check_sum);
                }
            }
            Message::GetMoreCells(m) => {
                encode_digest(buf, &m.block_id);
                put_u64_le(buf, m.from_index);
                write_varint(buf, m.count as u64);
            }
            Message::TxInv(m) => {
                write_varint(buf, m.txids.len() as u64);
                for id in &m.txids {
                    encode_digest(buf, id);
                }
            }
            Message::GetTxns(m) => {
                write_varint(buf, m.txids.len() as u64);
                for id in &m.txids {
                    encode_digest(buf, id);
                }
            }
            Message::Txns(m) => encode_txns(buf, &m.txns),
        }
    }

    fn encoded_len(&self) -> usize {
        self.wire_size()
    }
}

impl Decode for Message {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let ty = get_u8(buf)?;
        let len = get_u32_le(buf)? as usize;
        let mut body = take(buf, len)?;
        let b = &mut body;
        let msg = match ty {
            0x01 => Message::Inv(InvMsg { block_id: decode_digest(b)? }),
            0x02 => Message::GetData(GetDataMsg {
                block_id: decode_digest(b)?,
                mempool_count: read_varint(b)?,
            }),
            0x10 => {
                let header = decode_header(b)?;
                let block_tx_count = read_varint(b)?;
                let bloom_s = BloomFilter::decode(b)?;
                let iblt_i = WireIblt::decode(b)?.0;
                let prefilled = decode_txns(b)?;
                let order_len = read_varint(b)? as usize;
                let order_bytes = take(b, order_len)?.to_vec();
                Message::GrapheneBlock(GrapheneBlockMsg {
                    header,
                    block_tx_count,
                    bloom_s,
                    iblt_i,
                    prefilled,
                    order_bytes,
                })
            }
            0x11 => Message::GrapheneRequest(GrapheneRequestMsg {
                block_id: decode_digest(b)?,
                bloom_r: BloomFilter::decode(b)?,
                y_star: read_varint(b)?,
                b: read_varint(b)?,
                special_mn: get_u8(b)? != 0,
            }),
            0x12 => {
                let block_id = decode_digest(b)?;
                let missing = decode_txns(b)?;
                let iblt_j = WireIblt::decode(b)?.0;
                let bloom_f = match get_u8(b)? {
                    0 => None,
                    1 => Some(BloomFilter::decode(b)?),
                    _ => return Err(WireError::Invalid("recovery: bad filter flag")),
                };
                Message::GrapheneRecovery(GrapheneRecoveryMsg {
                    block_id,
                    missing,
                    iblt_j,
                    bloom_f,
                })
            }
            0x20 => {
                let header = decode_header(b)?;
                let nonce = get_u64_le(b)?;
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd short-id count"));
                }
                let mut short_ids = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let raw = take(b, 6)?;
                    let mut bytes = [0u8; 8];
                    bytes[..6].copy_from_slice(raw);
                    short_ids.push(u64::from_le_bytes(bytes));
                }
                let pcount = read_varint(b)? as usize;
                if pcount > 1_000_000 {
                    return Err(WireError::Invalid("absurd prefilled count"));
                }
                let mut prefilled = Vec::with_capacity(pcount.min(4096));
                for _ in 0..pcount {
                    let i = read_varint(b)?;
                    prefilled.push((i, decode_tx(b)?));
                }
                Message::CmpctBlock(CmpctBlockMsg { header, nonce, short_ids, prefilled })
            }
            0x21 => {
                let block_id = decode_digest(b)?;
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd index count"));
                }
                let mut indexes = Vec::with_capacity(count.min(4096));
                let mut prev: Option<u64> = None;
                for _ in 0..count {
                    let gap = read_varint(b)?;
                    let idx = match prev {
                        None => gap,
                        Some(p) => p
                            .checked_add(gap)
                            .and_then(|v| v.checked_add(1))
                            .ok_or(WireError::Invalid("index overflow"))?,
                    };
                    indexes.push(idx);
                    prev = Some(idx);
                }
                Message::GetBlockTxn(GetBlockTxnMsg { block_id, indexes })
            }
            0x22 => Message::BlockTxn(BlockTxnMsg {
                block_id: decode_digest(b)?,
                txns: decode_txns(b)?,
            }),
            0x30 => Message::XthinGetData(XthinGetDataMsg {
                block_id: decode_digest(b)?,
                mempool_filter: BloomFilter::decode(b)?,
            }),
            0x31 => {
                let header = decode_header(b)?;
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd short-id count"));
                }
                let mut short_ids = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    short_ids.push(get_u64_le(b)?);
                }
                let missing = decode_txns(b)?;
                Message::XthinBlock(XthinBlockMsg { header, short_ids, missing })
            }
            0x40 => Message::FullBlock(FullBlockMsg {
                header: decode_header(b)?,
                txns: decode_txns(b)?,
            }),
            0x13 => {
                let block_id = decode_digest(b)?;
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd short-id count"));
                }
                let mut short_ids = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    short_ids.push(get_u64_le(b)?);
                }
                Message::GetGrapheneTxn(GetGrapheneTxnMsg { block_id, short_ids })
            }
            0x42 => Message::GetFullBlock(GetFullBlockMsg { block_id: decode_digest(b)? }),
            0x14 => {
                let block_id = decode_digest(b)?;
                let mempool_count = read_varint(b)?;
                let attempt = read_varint(b)?;
                if attempt > 64 {
                    return Err(WireError::Invalid("absurd retry attempt"));
                }
                Message::GetGrapheneRetry(GetGrapheneRetryMsg {
                    block_id,
                    mempool_count,
                    attempt: attempt as u32,
                })
            }
            0x15 => {
                let block_id = decode_digest(b)?;
                let salt = get_u64_le(b)?;
                let start_index = get_u64_le(b)?;
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd cell count"));
                }
                let mut cells = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let cell_count = get_u32_le(b)? as i32;
                    let key_sum = get_u64_le(b)?;
                    let check_sum = get_u32_le(b)?;
                    cells.push(graphene_iblt::Cell { count: cell_count, key_sum, check_sum });
                }
                Message::RatelessCells(RatelessCellsMsg { block_id, salt, start_index, cells })
            }
            0x16 => {
                let block_id = decode_digest(b)?;
                let from_index = get_u64_le(b)?;
                let count = read_varint(b)?;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd cell request"));
                }
                Message::GetMoreCells(GetMoreCellsMsg { block_id, from_index, count: count as u32 })
            }
            0x03 | 0x04 => {
                let count = read_varint(b)? as usize;
                if count > 1_000_000 {
                    return Err(WireError::Invalid("absurd txid count"));
                }
                let mut txids = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    txids.push(decode_digest(b)?);
                }
                if ty == 0x03 {
                    Message::TxInv(TxInvMsg { txids })
                } else {
                    Message::GetTxns(GetTxnsMsg { txids })
                }
            }
            0x05 => Message::Txns(TxnsMsg { txns: decode_txns(b)? }),
            _ => return Err(WireError::Invalid("unknown message type")),
        };
        if !body.is_empty() {
            return Err(WireError::Invalid("trailing bytes in frame body"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Block, OrderingScheme};

    fn sample_header() -> Header {
        let txns: Vec<Transaction> =
            (0u64..4).map(|i| Transaction::new(i.to_le_bytes().to_vec())).collect();
        *Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor).header()
    }

    fn sample_txns(n: u64) -> Vec<Transaction> {
        (0..n).map(|i| Transaction::new(vec![i as u8; 100])).collect()
    }

    fn roundtrip(msg: Message) -> Message {
        let bytes = msg.to_vec();
        assert_eq!(bytes.len(), msg.wire_size(), "wire_size out of sync");
        Message::decode_exact(&bytes).expect("roundtrip decode")
    }

    #[test]
    fn inv_getdata_roundtrip() {
        let id = Digest([7u8; 32]);
        match roundtrip(Message::Inv(InvMsg { block_id: id })) {
            Message::Inv(m) => assert_eq!(m.block_id, id),
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(Message::GetData(GetDataMsg { block_id: id, mempool_count: 60_000 })) {
            Message::GetData(m) => {
                assert_eq!(m.block_id, id);
                assert_eq!(m.mempool_count, 60_000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn graphene_block_roundtrip() {
        let mut bloom = BloomFilter::new(100, 0.05, 9);
        let mut iblt = Iblt::new(24, 3, 5);
        for i in 0u64..100 {
            let d = graphene_hashes::sha256(&i.to_le_bytes());
            bloom.insert(&d);
            iblt.insert(i);
        }
        let msg = Message::GrapheneBlock(GrapheneBlockMsg {
            header: sample_header(),
            block_tx_count: 100,
            bloom_s: bloom,
            iblt_i: iblt.clone(),
            prefilled: sample_txns(2),
            order_bytes: vec![1, 2, 3],
        });
        match roundtrip(msg) {
            Message::GrapheneBlock(m) => {
                assert_eq!(m.block_tx_count, 100);
                assert_eq!(m.iblt_i, iblt);
                assert_eq!(m.prefilled.len(), 2);
                assert_eq!(m.order_bytes, vec![1, 2, 3]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn graphene_request_recovery_roundtrip() {
        let req = Message::GrapheneRequest(GrapheneRequestMsg {
            block_id: Digest([1; 32]),
            bloom_r: BloomFilter::new(50, 0.1, 2),
            y_star: 12,
            b: 3,
            special_mn: true,
        });
        match roundtrip(req) {
            Message::GrapheneRequest(m) => {
                assert_eq!(m.y_star, 12);
                assert_eq!(m.b, 3);
                assert!(m.special_mn);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let rec = Message::GrapheneRecovery(GrapheneRecoveryMsg {
            block_id: Digest([2; 32]),
            missing: sample_txns(3),
            iblt_j: Iblt::new(12, 3, 1),
            bloom_f: Some(BloomFilter::new(10, 0.1, 3)),
        });
        match roundtrip(rec) {
            Message::GrapheneRecovery(m) => {
                assert_eq!(m.missing.len(), 3);
                assert!(m.bloom_f.is_some());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn cmpct_block_roundtrip_and_size() {
        let short_ids: Vec<u64> = (0..2000u64).map(|i| i * 31 % 0xffff_ffff_ffff).collect();
        let msg = Message::CmpctBlock(CmpctBlockMsg {
            header: sample_header(),
            nonce: 77,
            short_ids: short_ids.clone(),
            prefilled: vec![(0, sample_txns(1)[0].clone())],
        });
        // 6 bytes per short ID dominates: n = 2000 → about 12 KB.
        assert!(msg.body_len() > 6 * 2000);
        assert!(msg.body_len() < 6 * 2000 + 300);
        match roundtrip(msg) {
            Message::CmpctBlock(m) => assert_eq!(m.short_ids, short_ids),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn getblocktxn_differential_encoding() {
        let msg = Message::GetBlockTxn(GetBlockTxnMsg {
            block_id: Digest([3; 32]),
            indexes: vec![5, 6, 10, 500, 501],
        });
        match roundtrip(msg.clone()) {
            Message::GetBlockTxn(m) => assert_eq!(m.indexes, vec![5, 6, 10, 500, 501]),
            other => panic!("wrong variant: {other:?}"),
        }
        // Dense requests stay near 1 byte per index.
        let dense = Message::GetBlockTxn(GetBlockTxnMsg {
            block_id: Digest([3; 32]),
            indexes: (0..1000).collect(),
        });
        assert!(dense.body_len() < 32 + 3 + 1100);
    }

    #[test]
    fn xthin_roundtrip() {
        let msg = Message::XthinBlock(XthinBlockMsg {
            header: sample_header(),
            short_ids: vec![1, 2, 3],
            missing: sample_txns(1),
        });
        match roundtrip(msg) {
            Message::XthinBlock(m) => {
                assert_eq!(m.short_ids, vec![1, 2, 3]);
                assert_eq!(m.missing.len(), 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn full_block_roundtrip() {
        let txns = sample_txns(5);
        let msg = Message::FullBlock(FullBlockMsg { header: sample_header(), txns: txns.clone() });
        match roundtrip(msg) {
            Message::FullBlock(m) => assert_eq!(m.txns, txns),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn graphene_retry_roundtrip() {
        let msg = Message::GetGrapheneRetry(GetGrapheneRetryMsg {
            block_id: Digest([4; 32]),
            mempool_count: 12_345,
            attempt: 2,
        });
        match roundtrip(msg) {
            Message::GetGrapheneRetry(m) => {
                assert_eq!(m.block_id, Digest([4; 32]));
                assert_eq!(m.mempool_count, 12_345);
                assert_eq!(m.attempt, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // An absurd attempt count must be rejected, not trusted.
        let silly = Message::GetGrapheneRetry(GetGrapheneRetryMsg {
            block_id: Digest([4; 32]),
            mempool_count: 1,
            attempt: 1000,
        });
        assert!(Message::decode_exact(&silly.to_vec()).is_err());
    }

    #[test]
    fn rateless_cells_roundtrip() {
        let cells: Vec<graphene_iblt::Cell> = (0..50i32)
            .map(|i| graphene_iblt::Cell {
                count: i - 25,
                key_sum: (i as u64).wrapping_mul(0x9e37_79b9),
                check_sum: i as u32 * 7,
            })
            .collect();
        let msg = Message::RatelessCells(RatelessCellsMsg {
            block_id: Digest([5; 32]),
            salt: 0xfeed_beef,
            start_index: 64,
            cells: cells.clone(),
        });
        match roundtrip(msg) {
            Message::RatelessCells(m) => {
                assert_eq!(m.block_id, Digest([5; 32]));
                assert_eq!(m.salt, 0xfeed_beef);
                assert_eq!(m.start_index, 64);
                assert_eq!(m.cells, cells);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn get_more_cells_roundtrip() {
        let msg = Message::GetMoreCells(GetMoreCellsMsg {
            block_id: Digest([6; 32]),
            from_index: 128,
            count: 96,
        });
        match roundtrip(msg) {
            Message::GetMoreCells(m) => {
                assert_eq!(m.block_id, Digest([6; 32]));
                assert_eq!(m.from_index, 128);
                assert_eq!(m.count, 96);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let msg = Message::Inv(InvMsg { block_id: Digest([9; 32]) });
        let bytes = msg.to_vec();
        // Unknown type byte.
        let mut bad = bytes.clone();
        bad[0] = 0x77;
        assert!(Message::decode_exact(&bad).is_err());
        // Truncated body.
        assert!(Message::decode_exact(&bytes[..bytes.len() - 1]).is_err());
        // Oversized declared length.
        let mut long = bytes.clone();
        long[1] = 0xff;
        assert!(Message::decode_exact(&long).is_err());
    }
}
