//! Bitcoin CompactSize variable-length integers.
//!
//! `< 0xfd`: 1 byte; `<= 0xffff`: 0xfd + u16; `<= 0xffff_ffff`: 0xfe + u32;
//! otherwise 0xff + u64. All multi-byte values little-endian.

use crate::codec::WireError;
use bytes::{Buf, BufMut};

/// Encoded length of `v` in bytes.
pub fn varint_len(v: u64) -> usize {
    match v {
        0..=0xfc => 1,
        0xfd..=0xffff => 3,
        0x1_0000..=0xffff_ffff => 5,
        _ => 9,
    }
}

/// Append the CompactSize encoding of `v` to `buf`.
pub fn write_varint(buf: &mut impl BufMut, v: u64) {
    match v {
        0..=0xfc => buf.put_u8(v as u8),
        0xfd..=0xffff => {
            buf.put_u8(0xfd);
            buf.put_u16_le(v as u16);
        }
        0x1_0000..=0xffff_ffff => {
            buf.put_u8(0xfe);
            buf.put_u32_le(v as u32);
        }
        _ => {
            buf.put_u8(0xff);
            buf.put_u64_le(v);
        }
    }
}

/// Read a CompactSize integer, rejecting truncation and non-canonical
/// encodings (a value that would have fit in a shorter form).
pub fn read_varint(buf: &mut impl Buf) -> Result<u64, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::UnexpectedEnd);
    }
    let tag = buf.get_u8();
    let (v, min) = match tag {
        0..=0xfc => return Ok(tag as u64),
        0xfd => {
            if buf.remaining() < 2 {
                return Err(WireError::UnexpectedEnd);
            }
            (buf.get_u16_le() as u64, 0xfdu64)
        }
        0xfe => {
            if buf.remaining() < 4 {
                return Err(WireError::UnexpectedEnd);
            }
            (buf.get_u32_le() as u64, 0x1_0000)
        }
        0xff => {
            if buf.remaining() < 8 {
                return Err(WireError::UnexpectedEnd);
            }
            (buf.get_u64_le(), 0x1_0000_0000)
        }
    };
    if v < min {
        return Err(WireError::NonCanonical);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v));
        read_varint(&mut buf.as_slice()).expect("roundtrip")
    }

    #[test]
    fn boundaries() {
        for v in [
            0u64,
            1,
            0xfc,
            0xfd,
            0xfffe,
            0xffff,
            0x1_0000,
            0xffff_fffe,
            0xffff_ffff,
            0x1_0000_0000,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v, "value {v:#x}");
        }
    }

    #[test]
    fn rejects_truncation() {
        assert!(matches!(read_varint(&mut &[][..]), Err(WireError::UnexpectedEnd)));
        assert!(matches!(read_varint(&mut &[0xfd, 0x01][..]), Err(WireError::UnexpectedEnd)));
        assert!(matches!(read_varint(&mut &[0xfe, 0, 0, 0][..]), Err(WireError::UnexpectedEnd)));
    }

    #[test]
    fn rejects_non_canonical() {
        // 5 encoded with the 3-byte form.
        assert!(matches!(read_varint(&mut &[0xfd, 5, 0][..]), Err(WireError::NonCanonical)));
        // 0xffff encoded with the 5-byte form.
        assert!(matches!(
            read_varint(&mut &[0xfe, 0xff, 0xff, 0, 0][..]),
            Err(WireError::NonCanonical)
        ));
    }
}
