//! Adversarial decode tests: hostile or damaged frames must come back as
//! `Err(WireError)` — never a panic, never an over-read.
//!
//! The netsim fault injector and the §6.1 adversary both hand the decoder
//! truncated and bit-flipped frames; these tests pin down the contract the
//! recovery ladder relies on: *any* mutilation of a `GrapheneBlockMsg` or
//! a raw IBLT payload is either rejected cleanly or yields a value whose
//! re-encoding is exactly as long as it claims.

use graphene_blockchain::{Block, OrderingScheme, Transaction};
use graphene_bloom::BloomFilter;
use graphene_hashes::{sha256, Digest};
use graphene_iblt::cell::check_hash;
use graphene_iblt::Iblt;
use graphene_wire::filters::WireIblt;
use graphene_wire::messages::{GetMoreCellsMsg, GrapheneBlockMsg, RatelessCellsMsg};
use graphene_wire::{Decode, Encode, Message};
use proptest::prelude::*;

/// A realistic Graphene block frame: populated Bloom filter, populated
/// IBLT, a prefilled transaction, and order bytes.
fn graphene_block_frame() -> Vec<u8> {
    let txns = vec![Transaction::new(&b"coinbase"[..])];
    let block = Block::assemble(Digest::ZERO, 7, txns, OrderingScheme::Ctor);
    let mut bloom = BloomFilter::new(64, 0.01, 11);
    let mut iblt = Iblt::new(24, 3, 11);
    for i in 0u64..40 {
        bloom.insert(&sha256(&i.to_le_bytes()));
        iblt.insert(i | 1);
    }
    Message::GrapheneBlock(GrapheneBlockMsg {
        header: *block.header(),
        block_tx_count: 40,
        bloom_s: bloom,
        iblt_i: iblt,
        prefilled: vec![Transaction::new(&b"coinbase"[..])],
        order_bytes: vec![3, 1, 4, 1, 5],
    })
    .to_vec()
}

fn iblt_payload() -> Vec<u8> {
    let mut t = Iblt::new(30, 3, 5);
    for v in 0u64..12 {
        t.insert(v.wrapping_mul(0x9e37_79b9) | 1);
    }
    WireIblt(t).to_vec()
}

#[test]
fn every_graphene_block_truncation_errors() {
    let frame = graphene_block_frame();
    // Every proper prefix — including the empty one — must be rejected.
    for n in 0..frame.len() {
        assert!(
            Message::decode_exact(&frame[..n]).is_err(),
            "prefix of {n}/{} bytes decoded",
            frame.len()
        );
    }
    assert!(Message::decode_exact(&frame).is_ok());
}

#[test]
fn every_iblt_truncation_errors() {
    let payload = iblt_payload();
    for n in 0..payload.len() {
        assert!(
            WireIblt::decode_exact(&payload[..n]).is_err(),
            "IBLT prefix of {n}/{} bytes decoded",
            payload.len()
        );
    }
    assert!(WireIblt::decode_exact(&payload).is_ok());
}

#[test]
fn every_single_bit_flip_is_handled() {
    // Exhaustive over every bit of the frame: the link fault injector
    // flips exactly one bit, so this is the precise corruption model the
    // simulator exercises. Decoding must not panic; on success the value
    // must re-encode to its declared size.
    let frame = graphene_block_frame();
    let mut ok = 0usize;
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut flipped = frame.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok(msg) = Message::decode_exact(&flipped) {
                assert_eq!(msg.to_vec().len(), msg.wire_size());
                ok += 1;
            }
        }
    }
    // Many flips land in filter bits or transaction payloads and still
    // parse — that is fine (and why recovery, not framing, catches them).
    assert!(ok > 0, "expected some flips to remain parseable");
}

#[test]
fn every_single_bit_flip_of_an_iblt_is_handled() {
    let payload = iblt_payload();
    for byte in 0..payload.len() {
        for bit in 0..8 {
            let mut flipped = payload.clone();
            flipped[byte] ^= 1 << bit;
            if let Ok(w) = WireIblt::decode_exact(&flipped) {
                assert_eq!(w.to_vec().len(), w.encoded_len());
            }
        }
    }
}

/// A realistic rateless-cells frame: a genuine stream window with live
/// checksums, as the rateless rung would send it.
fn rateless_cells_frame() -> Vec<u8> {
    let salt = 0x524c_0007u64;
    let cells: Vec<graphene_iblt::Cell> = (0u64..48)
        .map(|i| {
            let v = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            graphene_iblt::Cell { count: 1, key_sum: v, check_sum: check_hash(salt, v) }
        })
        .collect();
    Message::RatelessCells(RatelessCellsMsg {
        block_id: Digest([0x15; 32]),
        salt,
        start_index: 32,
        cells,
    })
    .to_vec()
}

fn get_more_cells_frame() -> Vec<u8> {
    Message::GetMoreCells(GetMoreCellsMsg {
        block_id: Digest([0x16; 32]),
        from_index: 96,
        count: 64,
    })
    .to_vec()
}

#[test]
fn every_rateless_cells_truncation_errors() {
    let frame = rateless_cells_frame();
    for n in 0..frame.len() {
        assert!(
            Message::decode_exact(&frame[..n]).is_err(),
            "0x15 prefix of {n}/{} bytes decoded",
            frame.len()
        );
    }
    assert!(Message::decode_exact(&frame).is_ok());
}

#[test]
fn every_get_more_cells_truncation_errors() {
    let frame = get_more_cells_frame();
    for n in 0..frame.len() {
        assert!(
            Message::decode_exact(&frame[..n]).is_err(),
            "0x16 prefix of {n}/{} bytes decoded",
            frame.len()
        );
    }
    assert!(Message::decode_exact(&frame).is_ok());
}

#[test]
fn every_single_bit_flip_of_rateless_frames_is_handled() {
    for frame in [rateless_cells_frame(), get_more_cells_frame()] {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                if let Ok(msg) = Message::decode_exact(&flipped) {
                    assert_eq!(msg.to_vec().len(), msg.wire_size());
                }
            }
        }
    }
}

#[test]
fn hostile_rateless_cell_count_rejected() {
    // A 0x15 frame whose varint claims over a million cells must be
    // rejected before any allocation is attempted.
    let mut frame = vec![0x15u8];
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // declared body len
    frame.extend_from_slice(&[0u8; 32]); // block id
    frame.extend_from_slice(&[0u8; 16]); // salt + start_index
    let mut n = 5_000_000u64;
    while n >= 0x80 {
        frame.push((n as u8 & 0x7f) | 0x80);
        n >>= 7;
    }
    frame.push(n as u8);
    assert!(Message::decode_exact(&frame).is_err());
}

proptest! {
    /// Random multi-byte corruption + truncation of a rateless-cells
    /// frame: decode never panics, successful decodes stay length-honest.
    #[test]
    fn smashed_rateless_cells_never_panics(
        positions in proptest::collection::vec(any::<u64>(), 1..32),
        values in proptest::collection::vec(any::<u8>(), 32..33),
        cut in any::<u64>(),
    ) {
        let mut frame = rateless_cells_frame();
        for (slot, pos) in positions.iter().enumerate() {
            let i = (*pos as usize) % frame.len();
            frame[i] = values[slot % values.len()];
        }
        let keep = (cut as usize) % (frame.len() + 1);
        frame.truncate(keep);
        if let Ok(msg) = Message::decode_exact(&frame) {
            prop_assert_eq!(msg.to_vec().len(), msg.wire_size());
        }
    }

    /// Hostile cell-request counts (0x16) are rejected without allocation.
    #[test]
    fn hostile_cell_request_count_rejected(count in 1_000_001u64..u64::MAX / 2) {
        let mut body = Vec::new();
        body.extend_from_slice(&[0u8; 32]); // block id
        body.extend_from_slice(&[0u8; 8]); // from_index
        let mut n = count;
        while n >= 0x80 {
            body.push((n as u8 & 0x7f) | 0x80);
            n >>= 7;
        }
        body.push(n as u8);
        let mut frame = vec![0x16u8];
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        prop_assert!(Message::decode_exact(&frame).is_err());
    }
}

proptest! {
    /// Random multi-byte corruption of a valid Graphene block frame:
    /// decode never panics, successful decodes stay length-honest.
    #[test]
    fn smashed_graphene_block_never_panics(
        positions in proptest::collection::vec(any::<u64>(), 1..32),
        values in proptest::collection::vec(any::<u8>(), 32..33),
        cut in any::<u64>(),
    ) {
        let mut frame = graphene_block_frame();
        for (slot, pos) in positions.iter().enumerate() {
            let i = (*pos as usize) % frame.len();
            frame[i] = values[slot % values.len()];
        }
        // Also exercise corruption + truncation together.
        let keep = (cut as usize) % (frame.len() + 1);
        frame.truncate(keep);
        if let Ok(msg) = Message::decode_exact(&frame) {
            prop_assert_eq!(msg.to_vec().len(), msg.wire_size());
        }
    }

    /// Random corruption of a raw IBLT payload.
    #[test]
    fn smashed_iblt_never_panics(
        positions in proptest::collection::vec(any::<u64>(), 1..16),
        values in proptest::collection::vec(any::<u8>(), 16..17),
    ) {
        let mut payload = iblt_payload();
        for (slot, pos) in positions.iter().enumerate() {
            let i = (*pos as usize) % payload.len();
            payload[i] = values[slot % values.len()];
        }
        if let Ok(w) = WireIblt::decode_exact(&payload) {
            prop_assert_eq!(w.to_vec().len(), w.encoded_len());
        }
    }

    /// Frames that lie about their element counts (huge varints spliced
    /// into the body) must be rejected without attempting the allocation.
    #[test]
    fn hostile_count_prefix_rejected(count in 1_000_001u64..u64::MAX / 2) {
        // Type byte for GetGrapheneTxn followed by a block id and an
        // absurd short-id count.
        let mut frame = vec![0x13u8];
        frame.extend_from_slice(&[0u8; 32]);
        let mut n = count;
        while n >= 0x80 {
            frame.push((n as u8 & 0x7f) | 0x80);
            n >>= 7;
        }
        frame.push(n as u8);
        prop_assert!(Message::decode_exact(&frame).is_err());
    }
}
