//! Property-based wire-format tests: every message round-trips, and every
//! declared length is exact.

use graphene_blockchain::{Block, OrderingScheme, Transaction};
use graphene_bloom::BloomFilter;
use graphene_hashes::Digest;
use graphene_iblt::Iblt;
use graphene_wire::messages::*;
use graphene_wire::{Decode, Encode, Message};
use proptest::prelude::*;

fn header() -> graphene_blockchain::Header {
    let txns = vec![Transaction::new(&b"x"[..])];
    *Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor).header()
}

fn txns_from(payloads: &[Vec<u8>]) -> Vec<Transaction> {
    payloads.iter().map(|p| Transaction::new(p.clone())).collect()
}

fn assert_roundtrip(msg: Message) -> Result<(), TestCaseError> {
    let bytes = msg.to_vec();
    prop_assert_eq!(bytes.len(), msg.wire_size(), "wire_size mismatch");
    let back = Message::decode_exact(&bytes).expect("decode");
    prop_assert_eq!(back.to_vec(), bytes, "re-encode differs");
    Ok(())
}

proptest! {
    #[test]
    fn inv_roundtrip(id: [u8; 32]) {
        assert_roundtrip(Message::Inv(InvMsg { block_id: Digest(id) }))?;
    }

    #[test]
    fn getdata_roundtrip(id: [u8; 32], m: u64) {
        assert_roundtrip(Message::GetData(GetDataMsg { block_id: Digest(id), mempool_count: m }))?;
    }

    #[test]
    fn graphene_block_roundtrip(
        n in 0u64..500,
        fpr in 0.001f64..1.0,
        cells in 3usize..60,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..5),
        order in proptest::collection::vec(any::<u8>(), 0..40),
        salt: u64,
    ) {
        let mut bloom = BloomFilter::new((n as usize).max(1), fpr, salt);
        let mut iblt = Iblt::new(cells, 3, salt);
        for i in 0..n.min(50) {
            bloom.insert(&graphene_hashes::sha256(&i.to_le_bytes()));
            iblt.insert(i);
        }
        assert_roundtrip(Message::GrapheneBlock(GrapheneBlockMsg {
            header: header(),
            block_tx_count: n,
            bloom_s: bloom,
            iblt_i: iblt,
            prefilled: txns_from(&payloads),
            order_bytes: order,
        }))?;
    }

    #[test]
    fn graphene_request_roundtrip(
        id: [u8; 32], y in 0u64..100_000, b in 0u64..100_000, special: bool, fpr in 0.001f64..1.0,
    ) {
        assert_roundtrip(Message::GrapheneRequest(GrapheneRequestMsg {
            block_id: Digest(id),
            bloom_r: BloomFilter::new(20, fpr, 3),
            y_star: y,
            b,
            special_mn: special,
        }))?;
    }

    #[test]
    fn graphene_recovery_roundtrip(
        id: [u8; 32],
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 0..6),
        with_f: bool,
        cells in 3usize..40,
    ) {
        assert_roundtrip(Message::GrapheneRecovery(GrapheneRecoveryMsg {
            block_id: Digest(id),
            missing: txns_from(&payloads),
            iblt_j: Iblt::new(cells, 3, 9),
            bloom_f: with_f.then(|| BloomFilter::new(10, 0.1, 4)),
        }))?;
    }

    #[test]
    fn cmpct_roundtrip(
        ids in proptest::collection::vec(0u64..0xffff_ffff_ffff, 0..200),
        nonce: u64,
    ) {
        assert_roundtrip(Message::CmpctBlock(CmpctBlockMsg {
            header: header(),
            nonce,
            short_ids: ids,
            prefilled: vec![(0, Transaction::new(&b"coinbase"[..]))],
        }))?;
    }

    #[test]
    fn getblocktxn_roundtrip(mut idx in proptest::collection::hash_set(0u64..100_000, 0..100)) {
        let mut indexes: Vec<u64> = idx.drain().collect();
        indexes.sort_unstable();
        assert_roundtrip(Message::GetBlockTxn(GetBlockTxnMsg {
            block_id: Digest([1; 32]),
            indexes,
        }))?;
    }

    #[test]
    fn xthin_roundtrip(
        shorts in proptest::collection::vec(any::<u64>(), 0..150),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..50), 0..4),
    ) {
        assert_roundtrip(Message::XthinBlock(XthinBlockMsg {
            header: header(),
            short_ids: shorts,
            missing: txns_from(&payloads),
        }))?;
        assert_roundtrip(Message::XthinGetData(XthinGetDataMsg {
            block_id: Digest([2; 32]),
            mempool_filter: BloomFilter::new(30, 0.01, 5),
        }))?;
    }

    #[test]
    fn fetch_messages_roundtrip(
        shorts in proptest::collection::vec(any::<u64>(), 0..100),
        id: [u8; 32],
    ) {
        assert_roundtrip(Message::GetGrapheneTxn(GetGrapheneTxnMsg {
            block_id: Digest(id),
            short_ids: shorts,
        }))?;
        assert_roundtrip(Message::GetFullBlock(GetFullBlockMsg { block_id: Digest(id) }))?;
    }

    /// Arbitrary bytes: decode never panics, and any successful decode
    /// re-encodes to a frame of the same declared size.
    #[test]
    fn arbitrary_bytes_safe(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(msg) = Message::decode_exact(&bytes) {
            prop_assert_eq!(msg.to_vec().len(), msg.wire_size());
        }
    }
}
