//! Gossip a block across a 20-peer network under packet loss, comparing
//! Graphene, Compact Blocks, XThin and full blocks on total bytes and
//! propagation time.
//!
//! ```sh
//! cargo run --release --example block_propagation
//! ```

use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_netsim::{LinkParams, Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, SeedableRng};

const PEERS: usize = 20;
const DEGREE: usize = 4;

fn run(protocol: RelayProtocol, label: &str) {
    // Every peer holds the whole block plus 2× unrelated transactions.
    let params = ScenarioParams {
        block_size: 1000,
        extra_mempool_multiple: 2.0,
        block_fraction_in_mempool: 1.0,
        profile: TxProfile::BtcLike,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(7));

    let mut net = Network::new(PEERS, protocol, 42);
    net.set_default_link(LinkParams {
        latency: SimTime::from_millis(40),
        bandwidth_bps: 10_000_000 / 8, // 10 Mbit/s
        drop_chance: 0.02,             // 2% loss: retries must cope
        ..LinkParams::default()
    });
    net.connect_random(DEGREE);
    for i in 0..PEERS {
        net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
    }

    let result = net.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(600_000));
    println!(
        "{label:<16} reached {:>2}/{PEERS} peers | {:>9} bytes total | {:>10} | {} frames ({} dropped)",
        result.peers_reached,
        result.total_bytes,
        result
            .completion_time
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "incomplete".into()),
        result.frames.0,
        result.frames.1,
    );
}

fn main() {
    println!(
        "propagating a 1000-txn block across {PEERS} peers (degree {DEGREE}, 40 ms links, 2% loss)\n"
    );
    run(RelayProtocol::Graphene(GrapheneConfig::default()), "graphene");
    run(RelayProtocol::CompactBlocks, "compact blocks");
    run(RelayProtocol::Xthin { filter_fpr: 0.001 }, "xthin");
    run(RelayProtocol::FullBlocks, "full blocks");
    println!("\nGraphene should use a small fraction of full-block bytes — the paper's headline.");
}
