//! Set reconciliation beyond blockchains: a CRLite-style certificate
//! revocation check (the paper's intro names exactly this use case — "a
//! client regularly checks a server for revocations of observed
//! certificates").
//!
//! The server holds the authoritative revocation set; the client holds a
//! stale copy. One Bloom filter + one IBLT bring the client up to date for
//! a fraction of the cost of re-downloading the list.
//!
//! ```sh
//! cargo run --example cert_revocation
//! ```

use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{sha256, short_id_8, Digest};
use graphene_iblt::Iblt;
use graphene_iblt_params::params_for;
use std::collections::HashMap;

/// Identify a certificate by the hash of its DER encoding (stand-in).
fn cert_id(serial: u64) -> Digest {
    sha256(format!("certificate serial {serial}").as_bytes())
}

fn main() {
    // Server: 50,000 revocations; client: a copy from last week missing the
    // 400 newest, plus 150 it shouldn't have (say, rolled-back test data).
    let server: Vec<Digest> = (0..50_000).map(cert_id).collect();
    let mut client: Vec<Digest> = server[..49_600].to_vec();
    client.extend((1_000_000..1_000_150).map(cert_id));

    // Server-side encoding: exactly Protocol 1's structure pair, sized for
    // the expected divergence (the server can bound it by update cadence).
    let expected_divergence = 1200usize;
    let fpr = expected_divergence as f64 / server.len() as f64;
    let mut filter = BloomFilter::new(server.len(), fpr, 0x5eed);
    let p = params_for(2 * expected_divergence, 240);
    let mut iblt = Iblt::new(p.c, p.k, 0x5eed);
    for id in &server {
        filter.insert(id);
        iblt.insert(short_id_8(id));
    }
    let wire_bytes = filter.serialized_size() + iblt.serialized_size();

    // Client-side: filter the local set, then reconcile with the IBLT.
    let mut by_short: HashMap<u64, Digest> = HashMap::new();
    let mut local = Iblt::new(iblt.cell_count(), iblt.hash_count(), iblt.salt());
    let mut dropped_at_filter = 0usize;
    for id in &client {
        if filter.contains(id) {
            local.insert(short_id_8(id));
            by_short.insert(short_id_8(id), *id);
        } else {
            // Bloom filters have no false negatives: failing the filter
            // proves the entry is not in the server's set any more.
            dropped_at_filter += 1;
        }
    }
    let mut delta = iblt.subtract(&local).expect("same geometry");
    let result = delta.peel().expect("well-formed");
    assert!(result.complete, "sized for the divergence, so this decodes");

    // `only_left` = revocations the client is missing (it learns their
    // short IDs and fetches details); `only_right` = stale local entries.
    let missing = result.only_left.len();
    let stale: Vec<Digest> =
        result.only_right.iter().filter_map(|s| by_short.get(s)).copied().collect();

    println!("server set:       {} revocations", server.len());
    println!("client set:       {} entries", client.len());
    println!(
        "sync payload:     {} bytes (filter {} + IBLT {})",
        wire_bytes,
        filter.serialized_size(),
        iblt.serialized_size()
    );
    println!("full re-download: {} bytes (32 B per entry)", 32 * server.len());
    println!("found missing:    {missing} revocations to fetch");
    println!(
        "found stale:      {} entries to drop ({dropped_at_filter} at the filter, {} via the IBLT)",
        dropped_at_filter + stale.len(),
        stale.len()
    );
    assert_eq!(missing, 400);
    assert_eq!(dropped_at_filter + stale.len(), 150, "every stale entry identified");
    println!(
        "\nreconciled at {:.1}% of the re-download cost ✓",
        100.0 * wire_bytes as f64 / (32.0 * server.len() as f64)
    );
}
