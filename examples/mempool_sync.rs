//! Mempool synchronization (paper §3.2.1): two peers with partially
//! overlapping pools obtain the union, paying far less than shipping
//! either pool outright.
//!
//! ```sh
//! cargo run --example mempool_sync
//! ```

use graphene::config::GrapheneConfig;
use graphene::mempool_sync::sync_mempools;
use graphene_blockchain::{Scenario, TxProfile};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let cfg = GrapheneConfig::default();
    println!("two peers, 2000-txn pools, varying overlap — bytes to reach the union:\n");
    println!(
        "{:>8}  {:>10}  {:>12}  {:>12}  {:>9}  {:>7}",
        "overlap", "union", "structures", "tx bodies", "naive", "rounds"
    );
    for common in [0.95, 0.8, 0.5, 0.2] {
        let (sender, receiver) = Scenario::mempool_sync(
            2000,
            common,
            TxProfile::BtcLike,
            &mut StdRng::seed_from_u64((common * 1000.0) as u64),
        );
        let naive: usize = sender.iter().map(|t| t.size()).sum();
        let (report, sender_after, receiver_after) = sync_mempools(&sender, &receiver, &cfg);
        assert!(report.success, "sync must converge");
        assert_eq!(sender_after.len(), report.union_size);
        assert_eq!(receiver_after.len(), report.union_size);
        let b = &report.bytes;
        let structures = b.getdata
            + b.bloom_s
            + b.iblt_i
            + b.p1_overhead
            + b.bloom_r
            + b.p2_request_overhead
            + b.iblt_j
            + b.bloom_f
            + b.p2_response_overhead
            + b.extra_fetch;
        let bodies = b.missing_txns + report.h_transfer;
        println!(
            "{:>7.0}%  {:>10}  {:>10} B  {:>10} B  {:>7} B  {:>7}",
            common * 100.0,
            report.union_size,
            structures,
            bodies,
            naive,
            report.rounds
        );
    }
    println!(
        "\n'naive' = shipping the sender's whole pool. The structure cost is what\n\
         Graphene adds on top of the unavoidable novel-transaction bodies."
    );
}
