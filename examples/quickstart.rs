//! Quickstart: relay one block with Graphene and inspect the byte breakdown.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graphene::session::{relay_block, RelayOutcome};
use graphene::GrapheneConfig;
use graphene_blockchain::{Block, Mempool, OrderingScheme, Transaction};
use graphene_hashes::Digest;

fn main() {
    // 1. A sender assembles a block of 500 transactions.
    let txns: Vec<Transaction> = (0..500u64)
        .map(|i| Transaction::new(format!("pay {} to {}", i, i * 31).into_bytes()))
        .collect();
    let block = Block::assemble(Digest::ZERO, 1_700_000_000, txns.clone(), OrderingScheme::Ctor);

    // 2. The receiver's mempool already holds every block transaction —
    //    plus a thousand unrelated ones (the usual, aggressively synced
    //    state of a blockchain peer).
    let mut mempool: Mempool = txns.into_iter().collect();
    for i in 0..1000u64 {
        mempool.insert(Transaction::new(format!("unrelated {i}").into_bytes()));
    }

    // 3. Relay. Graphene sends a Bloom filter S and an IBLT I; the receiver
    //    filters her mempool through S and peels I to remove the filter's
    //    false positives, then validates the Merkle root.
    let report = relay_block(&block, None, &mempool, &GrapheneConfig::default());

    println!("outcome:        {:?}", report.outcome);
    println!("round trips:    {}", report.rounds);
    println!("bloom filter S: {:>6} B", report.bytes.bloom_s);
    println!("IBLT I:         {:>6} B", report.bytes.iblt_i);
    println!("total on wire:  {:>6} B (excluding tx bodies)", report.bytes.total_excluding_txns());
    println!("compact blocks would need ≈ {:>6} B (6 B/txn)", 6 * block.len());
    println!("a full block is {:>6} B", block.serialized_size());

    assert!(matches!(report.outcome, RelayOutcome::DecodedP1 | RelayOutcome::DecodedP2 { .. }));
    let ids = report.ordered_ids.expect("decoded");
    assert_eq!(ids, block.ids(), "reconstruction must be exact");
    println!("\nreconstructed {} transactions, Merkle-validated ✓", ids.len());
}
