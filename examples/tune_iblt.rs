//! Tune an IBLT with Algorithm 1 (paper §4.1): find the smallest geometry
//! that decodes `j` items at a target failure rate, then verify it
//! empirically against both the embedded table and a naive static choice.
//!
//! ```sh
//! cargo run --release --example tune_iblt [j] [rate_denom]
//! ```

use graphene_iblt_params::hypergraph::failure_rate;
use graphene_iblt_params::{optimize, params_for, FailureRate, SearchConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let j: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(40);
    let denom: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(240);
    let rate = FailureRate(1.0 / denom as f64);

    println!("tuning an IBLT for j = {j} items at target failure rate 1/{denom}\n");

    // Live Algorithm 1 search (the table generator runs exactly this).
    let cfg = SearchConfig::default();
    let t0 = std::time::Instant::now();
    let (k, c) = optimize(j, rate, 3..=7, &cfg).expect("search converges");
    println!(
        "algorithm 1 search:  k = {k}, c = {c} cells (tau = {:.2}) in {:?}",
        c as f64 / j as f64,
        t0.elapsed()
    );

    // The shipped table (generated once, like the paper's released files).
    let p = params_for(j, denom);
    println!("embedded table:      k = {}, c = {} cells (tau = {:.2})", p.k, p.c, p.tau(j));

    // Naive static parameterization for contrast (the Fig. 7 black dots).
    let c_static = ((j as f64 * 1.5).ceil() as usize).div_ceil(4) * 4;

    // Validate all three empirically.
    let trials = 20_000;
    let mut rng = StdRng::seed_from_u64(1);
    for (label, kk, cc) in
        [("search result", k, c), ("embedded table", p.k, p.c), ("static k=4 tau=1.5", 4, c_static)]
    {
        let f = failure_rate(j, kk, cc, trials, &mut rng);
        let verdict = if f <= 1.0 / denom as f64 * 1.5 { "ok" } else { "MISSES TARGET" };
        println!(
            "  measured {label:<20} {f:.5} over {trials} trials (budget {:.5}) {verdict}",
            1.0 / denom as f64
        );
    }
}
