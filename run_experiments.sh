#!/bin/bash
# Regenerate every figure. Results land in results/*.csv and results/*.log.
# Flags are passed through to every binary, e.g.:
#   ./run_experiments.sh --quick        # 10x fewer Monte Carlo trials
#   ./run_experiments.sh --threads 8    # parallel trial engine (same output bytes)
set -u
cd "$(dirname "$0")"
mkdir -p results
BINS="ablations fig07 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 thm4 sec61 sec62 multipeer diffdigest backends organic cpisync propagation"
for b in $BINS; do
  echo "=== $b ==="
  ./target/release/$b "$@" > results/$b.log 2>&1
  echo "--- $b done ($(date +%T)) ---"
done
