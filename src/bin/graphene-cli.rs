//! `graphene-cli` — poke at the suite from a shell.
//!
//! ```text
//! graphene-cli relay   --n 2000 --mempool-multiple 1.0 --fraction 1.0
//! graphene-cli params  --j 50 --rate 240
//! graphene-cli sync    --n 2000 --common 0.8
//! graphene-cli gossip  --peers 12 --degree 3 --drop 0.05
//! ```
//!
//! Argument parsing is deliberately hand-rolled (no CLI dependency); every
//! subcommand prints a compact human-readable report and exits non-zero on
//! failure.

use graphene::config::GrapheneConfig;
use graphene::mempool_sync::sync_mempools;
use graphene::session::relay_block;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_iblt_params::params_for;
use graphene_netsim::{LinkParams, Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if let Some(v) = args.get(i + 1) {
                out.insert(key.to_string(), v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn cmd_relay(flags: &HashMap<String, String>) -> ExitCode {
    let n = get(flags, "n", 2000usize);
    let multiple = get(flags, "mempool-multiple", 1.0f64);
    let fraction = get(flags, "fraction", 1.0f64);
    let seed = get(flags, "seed", 7u64);
    let params = ScenarioParams {
        block_size: n,
        extra_mempool_multiple: multiple,
        block_fraction_in_mempool: fraction,
        profile: TxProfile::BtcLike,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
    let r = relay_block(&s.block, None, &s.receiver_mempool, &GrapheneConfig::default());
    println!("outcome:   {:?} in {} round trips", r.outcome, r.rounds);
    println!("bloom S:   {:>8} B   iblt I: {:>8} B", r.bytes.bloom_s, r.bytes.iblt_i);
    println!("bloom R:   {:>8} B   iblt J: {:>8} B", r.bytes.bloom_r, r.bytes.iblt_j);
    println!("total:     {:>8} B (excluding tx bodies)", r.bytes.total_excluding_txns());
    println!("vs 6n CB ≈ {:>8} B | full block = {} B", 6 * n, s.block.serialized_size());
    if r.outcome.is_success() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_params(flags: &HashMap<String, String>) -> ExitCode {
    let j = get(flags, "j", 50usize);
    let rate = get(flags, "rate", 240u32);
    let p = params_for(j, rate);
    println!(
        "IBLT for {j} recoverable items at failure ≤ 1/{rate}: k = {}, c = {} cells \
         (tau = {:.2}), {} bytes on the wire",
        p.k,
        p.c,
        p.tau(j),
        graphene_iblt::HEADER_BYTES + p.c * graphene_iblt::CELL_BYTES
    );
    ExitCode::SUCCESS
}

fn cmd_sync(flags: &HashMap<String, String>) -> ExitCode {
    let n = get(flags, "n", 2000usize);
    let common = get(flags, "common", 0.8f64);
    let seed = get(flags, "seed", 7u64);
    let (a, b) =
        Scenario::mempool_sync(n, common, TxProfile::BtcLike, &mut StdRng::seed_from_u64(seed));
    let (report, sa, sb) = sync_mempools(&a, &b, &GrapheneConfig::default());
    println!(
        "union of two {n}-txn pools ({}% common): {} txns in {} round trips",
        (common * 100.0) as u32,
        report.union_size,
        report.rounds
    );
    println!(
        "structures: {} B | bodies: {} B | success: {}",
        report.bytes.total_excluding_txns(),
        report.bytes.missing_txns + report.h_transfer,
        report.success
    );
    if report.success && sa.len() == report.union_size && sb.len() == report.union_size {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_gossip(flags: &HashMap<String, String>) -> ExitCode {
    let peers = get(flags, "peers", 12usize);
    let degree = get(flags, "degree", 3usize);
    let drop = get(flags, "drop", 0.0f64);
    let n = get(flags, "n", 1000usize);
    let seed = get(flags, "seed", 7u64);
    let params = ScenarioParams {
        block_size: n,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        profile: TxProfile::BtcLike,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
    let mut net = Network::new(peers, RelayProtocol::Graphene(GrapheneConfig::default()), seed);
    net.set_default_link(LinkParams { drop_chance: drop, ..LinkParams::default() });
    net.connect_random(degree);
    for i in 0..peers {
        net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
    }
    let r = net.propagate(PeerId(0), s.block, SimTime::from_millis(600_000));
    println!(
        "reached {}/{} peers | {} bytes | {} | {} frames ({} dropped)",
        r.peers_reached,
        peers,
        r.total_bytes,
        r.completion_time.map(|t| t.to_string()).unwrap_or_else(|| "incomplete".into()),
        r.frames.0,
        r.frames.1
    );
    if r.peers_reached == peers {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: graphene-cli <relay|params|sync|gossip> [--flag value ...]\n\
         \n\
         relay   --n N --mempool-multiple F --fraction F --seed S\n\
         params  --j N --rate DENOM\n\
         sync    --n N --common F --seed S\n\
         gossip  --peers N --degree N --drop F --n N --seed S"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "relay" => cmd_relay(&flags),
        "params" => cmd_params(&flags),
        "sync" => cmd_sync(&flags),
        "gossip" => cmd_gossip(&flags),
        _ => usage(),
    }
}
