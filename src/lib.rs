//! Umbrella crate for the Graphene suite.
pub use graphene;
