//! Adversarial and robustness integration tests: hostile bytes, hostile
//! structures, and the §6.1 attacks.

use graphene::config::GrapheneConfig;
use graphene::protocol1;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_iblt::{DecodeError, Iblt};
use graphene_wire::messages::Message;
use graphene_wire::{Decode, Encode};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Decoding arbitrary bytes must never panic — it may only return an error
/// or, coincidentally, a valid message.
#[test]
fn fuzz_decode_never_panics() {
    proptest!(|(bytes in proptest::collection::vec(any::<u8>(), 0..512))| {
        let _ = Message::decode_exact(&bytes);
    });
}

/// Flipping any single byte of a valid frame must produce either a decode
/// error or a structurally valid (but different) message — never a panic.
#[test]
fn bitflip_valid_frames() {
    let cfg = GrapheneConfig::default();
    let params = ScenarioParams { block_size: 60, ..Default::default() };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(5));
    let (msg, _) = protocol1::sender_encode(&s.block, 120, None, &cfg);
    let bytes = Message::GrapheneBlock(msg).to_vec();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x40;
        let _ = Message::decode_exact(&corrupted); // must not panic
    }
}

/// A corrupted Graphene payload that still decodes as a frame must not
/// crash the receiver; at worst the relay fails and falls back.
#[test]
fn corrupted_payload_handled_gracefully() {
    let cfg = GrapheneConfig::default();
    let params =
        ScenarioParams { block_size: 100, extra_mempool_multiple: 1.0, ..Default::default() };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(6));
    let (msg, _) = protocol1::sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg);
    let bytes = Message::GrapheneBlock(msg).to_vec();
    let mut survived = 0usize;
    for i in (13..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xff;
        if let Ok(Message::GrapheneBlock(m)) = Message::decode_exact(&corrupted) {
            // Whatever happens, no panic; Merkle validation rejects bad
            // reconstructions.
            if let Ok(ok) = protocol1::receiver_decode(&m, &s.receiver_mempool, &cfg) {
                assert_eq!(
                    ok.ordered_ids,
                    s.block.ids(),
                    "corruption at byte {i} produced a WRONG accepted block"
                );
                survived += 1;
            }
        }
    }
    // Some corruptions land in don't-care bits and still succeed — fine —
    // but none may yield an incorrect accepted block (asserted above).
    let _ = survived;
}

/// §6.1 malformed-IBLT attack: an endless-loop IBLT must be detected or
/// terminate; it must never hang. (A 5-second wall clock guard would hide
/// in CI; instead the peel's double-decode defense gives a deterministic
/// bound.)
#[test]
fn malformed_iblt_terminates() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let salt: u64 = rng.random();
        let honest = {
            let mut t = Iblt::new(30, 3, salt);
            for _ in 0..8 {
                t.insert(rng.random());
            }
            t
        };
        // Attacker mangles the serialized cells arbitrarily.
        let mut bytes = honest.to_bytes();
        for _ in 0..6 {
            let idx = 13 + (rng.random::<u64>() as usize) % (bytes.len() - 13);
            bytes[idx] ^= rng.random::<u8>();
        }
        if let Some(mut evil) = Iblt::from_bytes(&bytes) {
            match evil.peel() {
                Ok(r) => {
                    // Partial or complete — fine, just must terminate.
                    assert!(r.len() <= 30 + 8);
                }
                Err(DecodeError::Malformed { .. }) => {}
                Err(DecodeError::GeometryMismatch { .. }) => unreachable!("no subtraction"),
            }
        }
    }
}

/// Fault injection end-to-end: with both packet loss *and* corruption on
/// every link, frames are dropped and mangled in flight, recovery must go
/// through the 2 s retry timer, and the relay must still converge on every
/// peer.
#[test]
fn faulty_links_trigger_retries_and_still_converge() {
    use graphene_netsim::{LinkParams, Network, PeerId, RelayProtocol, SimTime};

    let params = ScenarioParams {
        block_size: 120,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(42));
    // Full mesh: a block announcement (`Inv`) is fire-and-forget, so a peer
    // whose every neighbor's announcement is lost can never start a session
    // — redundancy, not the timer, covers that frame (as in the real
    // network, where peers hear about a block from several neighbors).
    let build = |link: LinkParams| {
        let mut net = Network::new(4, RelayProtocol::Graphene(GrapheneConfig::default()), 4);
        for i in 0..4 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.set_default_link(link);
        for i in 0..4 {
            for j in i + 1..4 {
                net.connect(PeerId(i), PeerId(j));
            }
        }
        net
    };

    // Fault-free baseline on the same topology for the timing comparison.
    let mut clean = build(LinkParams::default());
    let clean_r = clean.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(600_000));
    assert_eq!(clean_r.peers_reached, 4, "baseline failed: {clean_r:?}");

    let faulty_link = LinkParams { drop_chance: 0.2, corrupt_chance: 0.2, ..LinkParams::default() };
    let mut net = build(faulty_link);
    let r = net.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(600_000));
    assert_eq!(r.peers_reached, 4, "relay did not converge under faults: {r:?}");
    // Both fault types must actually have fired (deterministic for the
    // fixed network seed)...
    assert!(r.frames.1 > 0, "no frames dropped at 20% loss: {r:?}");
    assert!(net.metrics.bad_decodes() > 0, "no corrupted frames reached a decoder");
    // ...and recovery must have waited out at least one 2 s retry timer.
    let (clean_t, faulty_t) = (clean_r.completion_time.unwrap(), r.completion_time.unwrap());
    assert!(
        faulty_t >= clean_t + SimTime::from_millis(2_000),
        "completed in {faulty_t:?} vs clean {clean_t:?} — no retry timer fired"
    );
}

/// §6.1 manufactured collision: two mempool transactions with the same
/// 8-byte short ID force the ShortIdCollision error rather than a wrong
/// block.
#[test]
fn short_id_collision_is_detected_not_miscoded() {
    use graphene::error::P1Failure;
    use graphene_blockchain::{Mempool, Transaction};
    use graphene_hashes::short_id_8;

    let cfg = GrapheneConfig::default();
    let params =
        ScenarioParams { block_size: 50, extra_mempool_multiple: 1.0, ..Default::default() };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(7));

    // Model a successful 2^64 grind: a mempool transaction whose forged ID
    // shares the victim's 8-byte prefix but differs in the tail.
    let victim = &s.block.txns()[0];
    let target = short_id_8(victim.id());
    let mut evil_id = *victim.id();
    evil_id.0[31] ^= 0xff;
    assert_eq!(short_id_8(&evil_id), target);
    assert_ne!(&evil_id, victim.id());

    let mut pool: Mempool = s.receiver_mempool.clone();
    pool.insert(Transaction::forge_with_id(&b"attacker payload"[..], evil_id));

    let (msg, _) = protocol1::sender_encode(&s.block, pool.len() as u64, None, &cfg);
    match protocol1::receiver_decode(&msg, &pool, &cfg) {
        // Both the victim and the forgery are in the pool, both pass S (the
        // victim is a block member; the forgery passes iff S's bits say so),
        // so the candidate map sees two distinct txids with one short ID.
        Err((P1Failure::ShortIdCollision, _)) => {}
        // If the forgery happened not to pass S, the decode must still be
        // correct.
        Ok(ok) => assert_eq!(ok.ordered_ids, s.block.ids()),
        Err((other, _)) => panic!("unexpected failure: {other:?}"),
    }
}
