//! Reproducibility: identical seeds must give identical results everywhere.
//! The evaluation's credibility rests on this — a figure regenerated on
//! another machine must match byte for byte.

use graphene::config::GrapheneConfig;
use graphene::session::relay_block;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_iblt_params::{search_c, FailureRate, SearchConfig};
use graphene_netsim::{Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn relay_reports_are_deterministic() {
    let cfg = GrapheneConfig::default();
    let params = ScenarioParams {
        block_size: 300,
        extra_mempool_multiple: 1.5,
        block_fraction_in_mempool: 0.7,
        ..Default::default()
    };
    let run = || {
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(77));
        relay_block(&s.block, None, &s.receiver_mempool, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn param_search_is_deterministic() {
    let cfg = SearchConfig { max_trials: 4000, ..SearchConfig::default() };
    let a = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    let b = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    assert_eq!(a, b);
}

#[test]
fn network_simulation_is_deterministic() {
    let run = || {
        let params = ScenarioParams {
            block_size: 120,
            extra_mempool_multiple: 1.0,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(3));
        let mut net = Network::new(6, RelayProtocol::Graphene(GrapheneConfig::default()), 11);
        for i in 0..6 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.connect_random(2);
        net.propagate(PeerId(0), s.block, SimTime::from_millis(120_000))
    };
    assert_eq!(run(), run());
}
