//! Reproducibility: identical seeds must give identical results everywhere.
//! The evaluation's credibility rests on this — a figure regenerated on
//! another machine must match byte for byte.

use graphene::config::GrapheneConfig;
use graphene::session::{relay_block, RelayOutcome};
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_experiments::{Engine, MeanAcc, PropAcc};
use graphene_iblt_params::{search_c, FailureRate, SearchConfig};
use graphene_netsim::{Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn relay_reports_are_deterministic() {
    let cfg = GrapheneConfig::default();
    let params = ScenarioParams {
        block_size: 300,
        extra_mempool_multiple: 1.5,
        block_fraction_in_mempool: 0.7,
        ..Default::default()
    };
    let run = || {
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(77));
        relay_block(&s.block, None, &s.receiver_mempool, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn param_search_is_deterministic() {
    let cfg = SearchConfig { max_trials: 4000, ..SearchConfig::default() };
    let a = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    let b = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    assert_eq!(a, b);
}

/// The tentpole guarantee of the Monte Carlo engine: a whole figure-style
/// sweep (the fig. 14 inner loop — mean relay bytes and decode failures
/// per point) produces bit-identical series at 1, 2 and 8 worker threads.
#[test]
fn figure_sweep_is_thread_count_invariant() {
    let cfg = GrapheneConfig::default();
    let sweep = |threads: usize| -> Vec<u64> {
        let engine = Engine::new(threads, 0xfeed);
        let mut series = Vec::new();
        for n in [40usize, 100] {
            let params = ScenarioParams {
                block_size: n,
                extra_mempool_multiple: 1.0,
                block_fraction_in_mempool: 0.9,
                ..Default::default()
            };
            let (bytes, fails) = engine.run_quiet(
                &format!("invariance n={n}"),
                150,
                |_, rng: &mut StdRng, acc: &mut (MeanAcc, PropAcc)| {
                    let s = Scenario::generate(&params, rng);
                    let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                    acc.0.push(r.bytes.total_excluding_txns() as f64);
                    acc.1.push(!matches!(
                        r.outcome,
                        RelayOutcome::DecodedP1 | RelayOutcome::DecodedP2 { .. }
                    ));
                },
            );
            let (mean, ci) = bytes.ci95();
            series.push(mean.to_bits());
            series.push(ci.to_bits());
            series.push(fails.successes());
        }
        series
    };
    let one = sweep(1);
    assert_eq!(one, sweep(2), "2-thread sweep diverged from 1-thread");
    assert_eq!(one, sweep(8), "8-thread sweep diverged from 1-thread");
}

#[test]
fn network_simulation_is_deterministic() {
    let run = || {
        let params =
            ScenarioParams { block_size: 120, extra_mempool_multiple: 1.0, ..Default::default() };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(3));
        let mut net = Network::new(6, RelayProtocol::Graphene(GrapheneConfig::default()), 11);
        for i in 0..6 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.connect_random(2);
        net.propagate(PeerId(0), s.block, SimTime::from_millis(120_000))
    };
    assert_eq!(run(), run());
}
