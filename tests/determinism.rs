//! Reproducibility: identical seeds must give identical results everywhere.
//! The evaluation's credibility rests on this — a figure regenerated on
//! another machine must match byte for byte.

use graphene::config::GrapheneConfig;
use graphene::session::{relay_block, RelayOutcome};
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_experiments::{fanout, Engine, MeanAcc, PropAcc};
use graphene_iblt_params::{search_c, FailureRate, SearchConfig};
use graphene_netsim::{ChaosConfig, LinkParams, Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn relay_reports_are_deterministic() {
    let cfg = GrapheneConfig::default();
    let params = ScenarioParams {
        block_size: 300,
        extra_mempool_multiple: 1.5,
        block_fraction_in_mempool: 0.7,
        ..Default::default()
    };
    let run = || {
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(77));
        relay_block(&s.block, None, &s.receiver_mempool, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn param_search_is_deterministic() {
    let cfg = SearchConfig { max_trials: 4000, ..SearchConfig::default() };
    let a = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    let b = search_c(40, 4, FailureRate(1.0 / 24.0), &cfg);
    assert_eq!(a, b);
}

/// The tentpole guarantee of the Monte Carlo engine: a whole figure-style
/// sweep (the fig. 14 inner loop — mean relay bytes and decode failures
/// per point) produces bit-identical series at 1, 2 and 8 worker threads.
#[test]
fn figure_sweep_is_thread_count_invariant() {
    let cfg = GrapheneConfig::default();
    let sweep = |threads: usize| -> Vec<u64> {
        let engine = Engine::new(threads, 0xfeed);
        let mut series = Vec::new();
        for n in [40usize, 100] {
            let params = ScenarioParams {
                block_size: n,
                extra_mempool_multiple: 1.0,
                block_fraction_in_mempool: 0.9,
                ..Default::default()
            };
            let (bytes, fails) = engine.run_quiet(
                &format!("invariance n={n}"),
                150,
                |_, rng: &mut StdRng, acc: &mut (MeanAcc, PropAcc)| {
                    let s = Scenario::generate(&params, rng);
                    let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                    acc.0.push(r.bytes.total_excluding_txns() as f64);
                    acc.1.push(!matches!(
                        r.outcome,
                        RelayOutcome::DecodedP1 | RelayOutcome::DecodedP2 { .. }
                    ));
                },
            );
            let (mean, ci) = bytes.ci95();
            series.push(mean.to_bits());
            series.push(ci.to_bits());
            series.push(fails.successes());
        }
        series
    };
    let one = sweep(1);
    assert_eq!(one, sweep(2), "2-thread sweep diverged from 1-thread");
    assert_eq!(one, sweep(8), "8-thread sweep diverged from 1-thread");
}

/// The encode-once fan-out sweep behind `results/fanout_sweep.csv` is
/// bit-identical at 1, 2 and 8 worker threads: every aggregated field —
/// float means, hit rate, max cache occupancy — compares equal, so the
/// emitted CSV is byte-identical for any `--threads` value.
#[test]
fn fanout_sweep_is_thread_count_invariant() {
    let run = |threads: usize| {
        let engine = Engine::new(threads, 0xeca1);
        [fanout::sweep_point(&engine, 2, 120), fanout::sweep_point(&engine, 2, 260)]
    };
    let (a, b, c) = (run(1), run(2), run(8));
    assert_eq!(a, b, "1 vs 2 threads diverged");
    assert_eq!(a, c, "1 vs 8 threads diverged");
    for p in &a {
        assert_eq!(p.frame_mismatches, 0.0, "cached frame diverged: {p:?}");
        assert!((p.delivery_cached - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
        assert!((p.delivery_uncached - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
    }
}

/// Chaos grid with every peer's encode-once relay cache enabled: churn
/// plus a mid-relay partition on lossy, duplicating, reordering links
/// still delivers the block to all peers, the caches actually serve hits
/// along the way, and accounted memory (cache included) stays under the
/// configured ceiling. Cache-served frames are byte-identical to fresh
/// encodes, so turning caches on must never cost delivery.
#[test]
fn chaos_grid_with_relay_caches_still_delivers_everywhere() {
    use graphene_experiments::chaos::{sweep_limits, PEERS};
    let params = ScenarioParams {
        block_size: 150,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(0x0ca9e));
    let mut net = Network::new(PEERS, RelayProtocol::Graphene(GrapheneConfig::default()), 0xd1);
    for i in 0..PEERS {
        let p = net.peer_mut(PeerId(i));
        p.mempool = s.receiver_mempool.clone();
        p.limits = sweep_limits();
        p.enable_encode_cache();
    }
    net.set_default_link(LinkParams {
        latency: SimTime::from_millis(30),
        drop_chance: 0.01,
        corrupt_chance: 0.01,
        duplicate_chance: 0.02,
        reorder_chance: 0.05,
        ..LinkParams::default()
    });
    for i in 0..PEERS {
        net.connect(PeerId(i), PeerId((i + 1) % PEERS));
    }
    for i in 0..PEERS / 2 {
        net.connect(PeerId(i), PeerId(i + PEERS / 2));
    }
    net.enable_chaos(ChaosConfig {
        seed: 0x7e11,
        churn_rate: 0.02,
        partition_at: Some(SimTime::from_millis(500)),
        partition_duration: SimTime::from_millis(30_000),
        active_from: SimTime::ZERO,
        active_until: SimTime::from_millis(90_000),
        exempt: vec![PeerId(0)],
        ..Default::default()
    });
    net.propagate(PeerId(0), s.block, SimTime(600_000_000));

    let reached = (0..PEERS).filter(|&i| net.metrics.arrival(PeerId(i)).is_some()).count();
    assert_eq!(reached, PEERS, "a peer missed the block with relay caches on");
    let cache = net.metrics.cache_stats();
    assert!(cache.hits >= 1, "fan-out under churn produced no cache hits: {cache:?}");
    assert!(cache.bytes_saved > 0, "hits saved no frame bytes: {cache:?}");
    let ceiling = sweep_limits().accounted_ceiling();
    assert!(
        net.metrics.resource_hwm_bytes() <= ceiling,
        "hwm {} over ceiling {ceiling}",
        net.metrics.resource_hwm_bytes()
    );
}

#[test]
fn network_simulation_is_deterministic() {
    let run = || {
        let params =
            ScenarioParams { block_size: 120, extra_mempool_multiple: 1.0, ..Default::default() };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(3));
        let mut net = Network::new(6, RelayProtocol::Graphene(GrapheneConfig::default()), 11);
        for i in 0..6 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.connect_random(2);
        net.propagate(PeerId(0), s.block, SimTime::from_millis(120_000))
    };
    assert_eq!(run(), run());
}
