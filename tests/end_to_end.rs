//! End-to-end integration: full relays through real wire encodings.
//!
//! These tests round-trip every protocol message through its byte encoding
//! between the sender and receiver steps — closer to a socket than the
//! in-process unit tests.

use graphene::config::GrapheneConfig;
use graphene::protocol1;
use graphene::protocol2;
use graphene::session::{relay_block, RelayOutcome};
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_wire::messages::Message;
use graphene_wire::{Decode, Encode};
use rand::{rngs::StdRng, SeedableRng};

fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
    let params = ScenarioParams {
        block_size: n,
        extra_mempool_multiple: extra,
        block_fraction_in_mempool: held,
        profile: TxProfile::Fixed(120),
        ..Default::default()
    };
    Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
}

/// Protocol 1 with a serialization round-trip between sender and receiver.
#[test]
fn protocol1_through_the_wire() {
    let cfg = GrapheneConfig::default();
    let s = scenario(400, 2.0, 1.0, 1);
    let (msg, _) = protocol1::sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg);

    let bytes = Message::GrapheneBlock(msg).to_vec();
    let Message::GrapheneBlock(decoded) = Message::decode_exact(&bytes).expect("decodes") else {
        panic!("wrong variant");
    };

    let got = protocol1::receiver_decode(&decoded, &s.receiver_mempool, &cfg)
        .expect("protocol 1 succeeds after the round-trip");
    assert_eq!(got.ordered_ids, s.block.ids());
}

/// Protocol 2, both messages serialized.
#[test]
fn protocol2_through_the_wire() {
    let cfg = GrapheneConfig::default();
    let s = scenario(300, 1.0, 0.5, 2);
    let m = s.receiver_mempool.len();
    let (p1_msg, _) = protocol1::sender_encode(&s.block, m as u64, None, &cfg);
    let p1_bytes = Message::GrapheneBlock(p1_msg).to_vec();
    let Message::GrapheneBlock(p1_msg) = Message::decode_exact(&p1_bytes).unwrap() else {
        panic!("wrong variant");
    };

    let Err((_, mut state)) = protocol1::receiver_decode(&p1_msg, &s.receiver_mempool, &cfg) else {
        panic!("P1 cannot succeed at 50% possession");
    };

    let (req, _) = protocol2::receiver_request(&state, s.block.id(), s.block.len(), m, &cfg);
    let req_bytes = Message::GrapheneRequest(req).to_vec();
    let Message::GrapheneRequest(req) = Message::decode_exact(&req_bytes).unwrap() else {
        panic!("wrong variant");
    };

    let rec = protocol2::sender_respond(&s.block, &req, m, &cfg);
    let rec_bytes = Message::GrapheneRecovery(rec).to_vec();
    let Message::GrapheneRecovery(rec) = Message::decode_exact(&rec_bytes).unwrap() else {
        panic!("wrong variant");
    };

    let got = protocol2::receiver_complete(
        &mut state,
        &rec,
        s.block.header().merkle_root,
        &p1_msg.order_bytes,
        &cfg,
    )
    .expect("protocol 2 succeeds after wire round-trips");
    if let Some(ids) = got.ordered_ids {
        assert_eq!(ids, s.block.ids());
    } else {
        assert!(!got.needs_fetch.is_empty());
    }
}

/// The full relay across a grid of scenarios never fails and never
/// reconstructs the wrong block.
#[test]
fn relay_grid_always_correct() {
    let cfg = GrapheneConfig::default();
    let mut outcomes = [0usize; 3];
    for (i, &(n, extra, held)) in [
        (100usize, 0.5, 1.0),
        (100, 3.0, 0.9),
        (250, 1.0, 0.5),
        (250, 0.0, 1.0),
        (250, 0.0, 0.3), // m < n
        (400, 1.0, 0.0), // receiver has nothing
        (50, 5.0, 1.0),
        (1, 5.0, 1.0),
    ]
    .iter()
    .enumerate()
    {
        let s = scenario(n, extra, held, 100 + i as u64);
        let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
        match r.outcome {
            RelayOutcome::DecodedP1 => outcomes[0] += 1,
            RelayOutcome::DecodedP2 { .. } => outcomes[1] += 1,
            RelayOutcome::Failed { .. } => outcomes[2] += 1,
        }
        if let Some(ids) = &r.ordered_ids {
            assert_eq!(ids, &s.block.ids(), "case {i} reconstructed wrong block");
        }
    }
    assert_eq!(outcomes[2], 0, "no relay should fail outright: {outcomes:?}");
    assert!(outcomes[0] >= 2, "some P1 successes expected: {outcomes:?}");
    assert!(outcomes[1] >= 2, "some P2 recoveries expected: {outcomes:?}");
}

/// Graphene's structures must beat Compact Blocks, which must beat full
/// blocks, for paper-typical parameters.
#[test]
fn size_ordering_graphene_compact_full() {
    let cfg = GrapheneConfig::default();
    let s = scenario(2000, 1.0, 1.0, 9);
    let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
    let c = graphene_baselines::compact_blocks_relay(&s.block, &s.receiver_mempool);
    let f = graphene_baselines::full_block_relay(&s.block);
    let g_bytes = g.bytes.total_excluding_txns();
    let c_bytes = c.total_excluding_txns();
    let f_bytes = f.total;
    assert!(
        g_bytes < c_bytes && c_bytes < f_bytes,
        "expected graphene < compact < full, got {g_bytes} / {c_bytes} / {f_bytes}"
    );
    // The paper's headline: ~12% of deployed (compact blocks) cost for
    // large blocks. Allow a generous band.
    assert!(
        (g_bytes as f64) < 0.5 * c_bytes as f64,
        "graphene should be well under half of compact blocks: {g_bytes} vs {c_bytes}"
    );
}

/// Mempool-derived knowledge: prefilled transactions rescue a receiver that
/// the sender *knows* is missing part of the block.
#[test]
fn prefill_end_to_end() {
    let cfg = GrapheneConfig::default();
    let s = scenario(200, 1.0, 1.0, 11);
    let ids = s.block.ids();
    let mut pool = s.receiver_mempool.clone();
    let mut view = graphene_blockchain::PeerView::new();
    for id in ids.iter().skip(5) {
        view.record(*id);
    }
    for id in ids.iter().take(5) {
        pool.remove(id);
    }
    let r = relay_block(&s.block, Some(&view), &pool, &cfg);
    assert_eq!(r.outcome, RelayOutcome::DecodedP1, "prefill avoids Protocol 2");
    assert!(r.bytes.prefilled > 0);
    assert_eq!(r.ordered_ids.as_deref(), Some(&ids[..]));
}
