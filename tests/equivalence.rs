//! Optimized-vs-reference equivalence: the zero-allocation hot paths must
//! be *bit-identical* to the pre-optimization implementations they replaced
//! (kept in `graphene_bench::reference`), and a set of committed golden
//! vectors pins the exact bytes so a behavior change cannot hide behind a
//! matching pair of bugs.
//!
//! The same layer proves the encode-once relay cache is *transparent*:
//! a frame served from the cache is byte-identical to a fresh canonical
//! encode for any block, mempool-size bucket, eviction pressure, or
//! crash/restore interleaving.

use graphene::encode_cache::{EncodeCache, MBucket};
use graphene::protocol1::{self, RetryTweak};
use graphene::GrapheneConfig;
use graphene_bench::reference::{ref_peel, ref_subtract_peel, RefBloom, RefGcs};
use graphene_blockchain::{Block, OrderingScheme, Transaction};
use graphene_bloom::{BloomFilter, GcsBuilder, HashStrategy, Membership};
use graphene_hashes::{hex, sha256, Digest};
use graphene_iblt::{Iblt, PeelScratch};
use graphene_wire::Encode;
use proptest::prelude::*;

fn digests(n: usize, tag: u64) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
}

fn test_block(n: usize, tag: u64) -> Block {
    let txns: Vec<Transaction> = (0..n as u64)
        .map(|i| Transaction::new([tag.to_le_bytes(), i.to_le_bytes()].concat()))
        .collect();
    Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor)
}

proptest! {
    /// Optimized Bloom insert/contains sets exactly the bits the old
    /// Vec-collecting path set, for both hash strategies, and answers
    /// membership identically for members and non-members.
    #[test]
    fn bloom_matches_reference(
        n in 1usize..300,
        fpr in 0.001f64..0.5,
        salt: u64,
        kpiece: bool,
    ) {
        let strategy = if kpiece { HashStrategy::KPiece } else { HashStrategy::DoubleHashing };
        let set = digests(n, salt);
        let probes = digests(200, salt ^ 0xabcd);
        let mut f = BloomFilter::with_strategy(n, fpr, salt, strategy);
        let mut r = RefBloom::with_strategy(n, fpr, salt, strategy);
        prop_assert_eq!(f.hash_count(), r.hash_count());
        for id in &set {
            f.insert(id);
            r.insert(id);
        }
        prop_assert_eq!(f.bit_vec().to_bytes(), r.bit_bytes());
        for id in set.iter().chain(&probes) {
            prop_assert_eq!(f.contains(id), r.contains(id));
        }
    }

    /// The three subtraction paths agree, and the scratch-reusing peel
    /// recovers exactly what the old allocating peel recovered — same
    /// values, same order, same completeness — with identical serialized
    /// bytes for the peeled remainder.
    #[test]
    fn iblt_matches_reference(
        only_a in 0usize..25,
        only_b in 0usize..25,
        shared in 0usize..100,
        salt: u64,
    ) {
        let cells = ((only_a + only_b) * 3).max(12);
        let mut a = Iblt::new(cells, 3, salt);
        let mut b = Iblt::new(cells, 3, salt);
        let base = 1_000_000u64;
        for i in 0..shared as u64 {
            a.insert(base + i);
            b.insert(base + i);
        }
        for i in 0..only_a as u64 {
            a.insert(2 * base + i);
        }
        for i in 0..only_b as u64 {
            b.insert(3 * base + i);
        }

        // subtract == subtract_into == subtract_from, cell for cell.
        let diff = a.subtract(&b).unwrap();
        let mut into = Iblt::new(1, 1, 0);
        a.subtract_into(&b, &mut into).unwrap();
        prop_assert_eq!(&into, &diff);
        let mut from = b.clone();
        from.subtract_from(&a).unwrap();
        prop_assert_eq!(&from, &diff);

        // Allocating reference peel == scratch-reusing peel, element order
        // included; the partially-peeled remainders serialize identically.
        let reference = ref_peel(&diff);
        let combined = ref_subtract_peel(&a, &b);
        prop_assert_eq!(&reference, &combined);
        let mut scratch = PeelScratch::new();
        let mut peeled = diff.clone();
        let optimized = peeled.peel_in_place(&mut scratch);
        prop_assert_eq!(&reference, &optimized);
        let mut legacy = diff.clone();
        let plain = legacy.peel();
        prop_assert_eq!(&plain, &optimized);
        prop_assert_eq!(legacy.to_bytes(), peeled.to_bytes());
    }

    /// The cached-decode GCS answers every query exactly as the
    /// re-decode-per-query reference, over identical wire bytes.
    #[test]
    fn gcs_matches_reference(n in 1usize..300, fpr in 0.001f64..0.3, salt: u64) {
        let set = digests(n, salt);
        let probes = digests(200, salt ^ 0x6c5);
        let mut b = GcsBuilder::new(n, fpr, salt);
        for id in &set {
            b.insert(id);
        }
        let g = b.build();
        let r = RefGcs::build(&set, n, fpr, salt);
        prop_assert_eq!(g.data(), r.data());
        prop_assert_eq!(g.len(), r.len());
        for id in set.iter().chain(&probes) {
            prop_assert_eq!(g.contains(id), r.contains(id));
        }
    }

    /// `encode_into` (the reusable-buffer wire path) produces exactly
    /// `encode` + fresh Vec, whatever was in the buffer before.
    #[test]
    fn encode_into_matches_encode(n in 0usize..50, salt: u64, junk in 0usize..64) {
        let mut f = BloomFilter::new(n.max(1), 0.02, salt);
        for id in digests(n, salt) {
            f.insert(&id);
        }
        let mut buf = vec![0xee; junk]; // stale garbage must be cleared
        f.encode_into(&mut buf);
        prop_assert_eq!(buf, f.to_vec());
    }

    /// A relay-cache frame — whether it was just encoded (miss) or served
    /// back (hit) — is byte-identical to the cache-free canonical encode
    /// for any block and any mempool count, and every count in the same
    /// power-of-two bucket shares the one frame.
    #[test]
    fn cached_frame_matches_fresh_encode(
        n in 1usize..100,
        tag: u64,
        m_counts in proptest::collection::vec(1u64..5000, 1..8),
    ) {
        let cfg = GrapheneConfig::default();
        let tweak = RetryTweak::initial(&cfg);
        let block = test_block(n, tag);
        let cache = EncodeCache::new(1 << 20);
        for &m in &m_counts {
            let first =
                protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, Some(&cache));
            let again =
                protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, Some(&cache));
            let fresh = protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, None);
            prop_assert!(again.from_cache, "second lookup of m={} must hit", m);
            prop_assert_eq!(&first.frame, &fresh.frame);
            prop_assert_eq!(&again.frame, &fresh.frame);
            // The bucket's canonical count resolves to the same frame.
            let canon = MBucket::for_count(m).canonical_m();
            let sibling =
                protocol1::sender_encode_cached(&block, canon, None, &cfg, &tweak, Some(&cache));
            prop_assert!(sibling.from_cache);
            prop_assert_eq!(&sibling.frame, &fresh.frame);
        }
    }

    /// Equivalence survives eviction pressure: with a cache far too small
    /// for the working set, every served frame — hit, miss, or re-encode
    /// of an evicted entry — still equals the fresh oracle, and occupancy
    /// never exceeds the budget.
    #[test]
    fn eviction_pressure_preserves_equivalence(
        tags in proptest::collection::vec(any::<u64>(), 2..10),
        m in 1u64..3000,
        cap_kb in 1u64..4,
    ) {
        let cfg = GrapheneConfig::default();
        let tweak = RetryTweak::initial(&cfg);
        let cache = EncodeCache::new(cap_kb * 1024);
        let check = |tag: u64| -> Result<(), TestCaseError> {
            // Block size derived from the tag: 1..=59 transactions.
            let block = test_block((tag % 59 + 1) as usize, tag);
            let served =
                protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, Some(&cache));
            let fresh = protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, None);
            prop_assert_eq!(&served.frame, &fresh.frame);
            prop_assert!(
                cache.used_bytes() <= cache.capacity_bytes(),
                "occupancy {} over budget {}",
                cache.used_bytes(),
                cache.capacity_bytes()
            );
            Ok(())
        };
        for &tag in &tags {
            check(tag)?;
        }
        // Revisit in reverse: recently-used entries hit, evicted ones
        // re-encode — either way the bytes must not change.
        for &tag in tags.iter().rev() {
            check(tag)?;
        }
    }
}

/// Crash/restore: the relay cache is volatile process memory. The durable
/// `NodeSnapshot` must not carry it across a crash — the restored node
/// starts with an *empty* (but re-enabled) cache, and re-encoding after
/// the crash reproduces the pre-crash frame byte for byte.
#[test]
fn crash_restore_drops_the_cache_but_not_equivalence() {
    use graphene_blockchain::Mempool;
    use graphene_netsim::peer::Peer;
    use graphene_netsim::{PeerId, RelayProtocol};
    use graphene_wire::messages::{GetDataMsg, Message};

    let mut p =
        Peer::new(PeerId(0), RelayProtocol::Graphene(GrapheneConfig::default()), Mempool::new());
    p.enable_encode_cache();
    let block = test_block(40, 0xc4a5);
    let id = block.id();
    p.originate(block, &[]);

    let getdata = || Message::GetData(GetDataMsg { block_id: id, mempool_count: 80 });
    let before = p.handle(PeerId(1), getdata(), &[]).send_frames[0].1.clone();
    assert!(!p.encode_cache().expect("cache enabled").is_empty());

    let snap = p.snapshot();
    p.restore(snap);
    let cache = p.encode_cache().expect("cache must be re-enabled after restore");
    assert!(cache.is_empty(), "NodeSnapshot leaked cache entries across the crash");
    assert_eq!(cache.used_bytes(), 0);

    let after = p.handle(PeerId(1), getdata(), &[]).send_frames[0].1.clone();
    assert_eq!(before, after, "post-crash re-encode diverged from the pre-crash frame");
    let stats = p.cache_stats().expect("cache enabled");
    assert_eq!((stats.hits, stats.misses), (0, 1), "restore preserved a cache entry");
}

// ---------------------------------------------------------------------------
// Golden vectors: the exact bytes of the optimized structures, committed.
// If one of these fails, the "optimization" changed observable behavior.
// ---------------------------------------------------------------------------

#[test]
fn golden_bloom_double_hashing() {
    let mut f = BloomFilter::with_strategy(8, 0.1, 42, HashStrategy::DoubleHashing);
    for id in digests(8, 7) {
        f.insert(&id);
    }
    assert_eq!(hex::encode(&f.to_vec()), GOLDEN_BLOOM_DOUBLE);
}

#[test]
fn golden_bloom_kpiece() {
    let mut f = BloomFilter::with_strategy(8, 0.1, 42, HashStrategy::KPiece);
    for id in digests(8, 7) {
        f.insert(&id);
    }
    assert_eq!(hex::encode(&f.to_vec()), GOLDEN_BLOOM_KPIECE);
}

#[test]
fn golden_iblt_after_peel() {
    let mut a = Iblt::new(12, 3, 7);
    let mut b = Iblt::new(12, 3, 7);
    for v in [1u64, 2, 3, 4] {
        a.insert(v);
    }
    for v in [3u64, 4, 5] {
        b.insert(v);
    }
    let mut d = a.subtract(&b).unwrap();
    assert_eq!(hex::encode(&d.to_bytes()), GOLDEN_IBLT_DIFF);
    let r = d.peel_in_place(&mut PeelScratch::new()).unwrap();
    assert!(r.complete);
    let mut left = r.only_left.clone();
    left.sort_unstable();
    assert_eq!(left, vec![1, 2]);
    assert_eq!(r.only_right, vec![5]);
    assert!(d.is_drained());
}

#[test]
fn golden_gcs() {
    let mut b = GcsBuilder::new(8, 0.05, 3);
    for id in digests(8, 9) {
        b.insert(&id);
    }
    let g = b.build();
    assert_eq!(hex::encode(g.data()), GOLDEN_GCS);
}

const GOLDEN_BLOOM_DOUBLE: &str = "0027000000032a0000000000000008da34ba19";
const GOLDEN_BLOOM_KPIECE: &str = "0227000000032a0000000000000028f7c1b32f";
const GOLDEN_IBLT_DIFF: &str = "0c00000003070000000000000000000000040000000000000082adf228\
     0000000000000000000000000000000000000000000000000000000000000000010000000200000000000000\
     eedf099700000000000000000000000000000000ffffffff0500000000000000e6a0bbcf0100000002000000\
     00000000eedf0997010000000100000000000000640d49e7010000000200000000000000eedf0997ffffffff\
     0500000000000000e6a0bbcf00000000000000000000000000000000010000000100000000000000640d49e7";
const GOLDEN_GCS: &str = "2d085e0255c0";
