//! Optimized-vs-reference equivalence: the zero-allocation hot paths must
//! be *bit-identical* to the pre-optimization implementations they replaced
//! (kept in `graphene_bench::reference`), and a set of committed golden
//! vectors pins the exact bytes so a behavior change cannot hide behind a
//! matching pair of bugs.

use graphene_bench::reference::{ref_peel, ref_subtract_peel, RefBloom, RefGcs};
use graphene_bloom::{BloomFilter, GcsBuilder, HashStrategy, Membership};
use graphene_hashes::{hex, sha256, Digest};
use graphene_iblt::{Iblt, PeelScratch};
use graphene_wire::Encode;
use proptest::prelude::*;

fn digests(n: usize, tag: u64) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
}

proptest! {
    /// Optimized Bloom insert/contains sets exactly the bits the old
    /// Vec-collecting path set, for both hash strategies, and answers
    /// membership identically for members and non-members.
    #[test]
    fn bloom_matches_reference(
        n in 1usize..300,
        fpr in 0.001f64..0.5,
        salt: u64,
        kpiece: bool,
    ) {
        let strategy = if kpiece { HashStrategy::KPiece } else { HashStrategy::DoubleHashing };
        let set = digests(n, salt);
        let probes = digests(200, salt ^ 0xabcd);
        let mut f = BloomFilter::with_strategy(n, fpr, salt, strategy);
        let mut r = RefBloom::with_strategy(n, fpr, salt, strategy);
        prop_assert_eq!(f.hash_count(), r.hash_count());
        for id in &set {
            f.insert(id);
            r.insert(id);
        }
        prop_assert_eq!(f.bit_vec().to_bytes(), r.bit_bytes());
        for id in set.iter().chain(&probes) {
            prop_assert_eq!(f.contains(id), r.contains(id));
        }
    }

    /// The three subtraction paths agree, and the scratch-reusing peel
    /// recovers exactly what the old allocating peel recovered — same
    /// values, same order, same completeness — with identical serialized
    /// bytes for the peeled remainder.
    #[test]
    fn iblt_matches_reference(
        only_a in 0usize..25,
        only_b in 0usize..25,
        shared in 0usize..100,
        salt: u64,
    ) {
        let cells = ((only_a + only_b) * 3).max(12);
        let mut a = Iblt::new(cells, 3, salt);
        let mut b = Iblt::new(cells, 3, salt);
        let base = 1_000_000u64;
        for i in 0..shared as u64 {
            a.insert(base + i);
            b.insert(base + i);
        }
        for i in 0..only_a as u64 {
            a.insert(2 * base + i);
        }
        for i in 0..only_b as u64 {
            b.insert(3 * base + i);
        }

        // subtract == subtract_into == subtract_from, cell for cell.
        let diff = a.subtract(&b).unwrap();
        let mut into = Iblt::new(1, 1, 0);
        a.subtract_into(&b, &mut into).unwrap();
        prop_assert_eq!(&into, &diff);
        let mut from = b.clone();
        from.subtract_from(&a).unwrap();
        prop_assert_eq!(&from, &diff);

        // Allocating reference peel == scratch-reusing peel, element order
        // included; the partially-peeled remainders serialize identically.
        let reference = ref_peel(&diff);
        let combined = ref_subtract_peel(&a, &b);
        prop_assert_eq!(&reference, &combined);
        let mut scratch = PeelScratch::new();
        let mut peeled = diff.clone();
        let optimized = peeled.peel_in_place(&mut scratch);
        prop_assert_eq!(&reference, &optimized);
        let mut legacy = diff.clone();
        let plain = legacy.peel();
        prop_assert_eq!(&plain, &optimized);
        prop_assert_eq!(legacy.to_bytes(), peeled.to_bytes());
    }

    /// The cached-decode GCS answers every query exactly as the
    /// re-decode-per-query reference, over identical wire bytes.
    #[test]
    fn gcs_matches_reference(n in 1usize..300, fpr in 0.001f64..0.3, salt: u64) {
        let set = digests(n, salt);
        let probes = digests(200, salt ^ 0x6c5);
        let mut b = GcsBuilder::new(n, fpr, salt);
        for id in &set {
            b.insert(id);
        }
        let g = b.build();
        let r = RefGcs::build(&set, n, fpr, salt);
        prop_assert_eq!(g.data(), r.data());
        prop_assert_eq!(g.len(), r.len());
        for id in set.iter().chain(&probes) {
            prop_assert_eq!(g.contains(id), r.contains(id));
        }
    }

    /// `encode_into` (the reusable-buffer wire path) produces exactly
    /// `encode` + fresh Vec, whatever was in the buffer before.
    #[test]
    fn encode_into_matches_encode(n in 0usize..50, salt: u64, junk in 0usize..64) {
        let mut f = BloomFilter::new(n.max(1), 0.02, salt);
        for id in digests(n, salt) {
            f.insert(&id);
        }
        let mut buf = vec![0xee; junk]; // stale garbage must be cleared
        f.encode_into(&mut buf);
        prop_assert_eq!(buf, f.to_vec());
    }
}

// ---------------------------------------------------------------------------
// Golden vectors: the exact bytes of the optimized structures, committed.
// If one of these fails, the "optimization" changed observable behavior.
// ---------------------------------------------------------------------------

#[test]
fn golden_bloom_double_hashing() {
    let mut f = BloomFilter::with_strategy(8, 0.1, 42, HashStrategy::DoubleHashing);
    for id in digests(8, 7) {
        f.insert(&id);
    }
    assert_eq!(hex::encode(&f.to_vec()), GOLDEN_BLOOM_DOUBLE);
}

#[test]
fn golden_bloom_kpiece() {
    let mut f = BloomFilter::with_strategy(8, 0.1, 42, HashStrategy::KPiece);
    for id in digests(8, 7) {
        f.insert(&id);
    }
    assert_eq!(hex::encode(&f.to_vec()), GOLDEN_BLOOM_KPIECE);
}

#[test]
fn golden_iblt_after_peel() {
    let mut a = Iblt::new(12, 3, 7);
    let mut b = Iblt::new(12, 3, 7);
    for v in [1u64, 2, 3, 4] {
        a.insert(v);
    }
    for v in [3u64, 4, 5] {
        b.insert(v);
    }
    let mut d = a.subtract(&b).unwrap();
    assert_eq!(hex::encode(&d.to_bytes()), GOLDEN_IBLT_DIFF);
    let r = d.peel_in_place(&mut PeelScratch::new()).unwrap();
    assert!(r.complete);
    let mut left = r.only_left.clone();
    left.sort_unstable();
    assert_eq!(left, vec![1, 2]);
    assert_eq!(r.only_right, vec![5]);
    assert!(d.is_drained());
}

#[test]
fn golden_gcs() {
    let mut b = GcsBuilder::new(8, 0.05, 3);
    for id in digests(8, 9) {
        b.insert(&id);
    }
    let g = b.build();
    assert_eq!(hex::encode(g.data()), GOLDEN_GCS);
}

const GOLDEN_BLOOM_DOUBLE: &str = "0027000000032a0000000000000008da34ba19";
const GOLDEN_BLOOM_KPIECE: &str = "0227000000032a0000000000000028f7c1b32f";
const GOLDEN_IBLT_DIFF: &str = "0c00000003070000000000000000000000040000000000000082adf228\
     0000000000000000000000000000000000000000000000000000000000000000010000000200000000000000\
     eedf099700000000000000000000000000000000ffffffff0500000000000000e6a0bbcf0100000002000000\
     00000000eedf0997010000000100000000000000640d49e7010000000200000000000000eedf0997ffffffff\
     0500000000000000e6a0bbcf00000000000000000000000000000000010000000100000000000000640d49e7";
const GOLDEN_GCS: &str = "2d085e0255c0";
