//! Golden wire-format vectors: these byte strings are the protocol.
//!
//! If any of these tests fail, the change broke wire compatibility with
//! every deployed node (docs/PROTOCOL.md) and must bump a protocol version
//! instead.

use graphene_blockchain::Transaction;
use graphene_hashes::{hex, Digest};
use graphene_wire::messages::{GetDataMsg, GetGrapheneTxnMsg, InvMsg, Message};
use graphene_wire::{Decode, Encode};

#[test]
fn golden_inv() {
    let id = Digest([0x11; 32]);
    let bytes = Message::Inv(InvMsg { block_id: id }).to_vec();
    assert_eq!(
        hex::encode(&bytes),
        "0120000000\
         1111111111111111111111111111111111111111111111111111111111111111"
            .replace(char::is_whitespace, "")
    );
}

#[test]
fn golden_getdata() {
    let id = Digest([0x22; 32]);
    let bytes = Message::GetData(GetDataMsg { block_id: id, mempool_count: 60_000 }).to_vec();
    // type 02, len 35 (32 id + 3-byte varint), id, fd 60ea (60000 LE).
    assert_eq!(
        hex::encode(&bytes),
        "0223000000\
         2222222222222222222222222222222222222222222222222222222222222222\
         fd60ea"
            .replace(char::is_whitespace, "")
    );
}

#[test]
fn golden_get_graphene_txn() {
    let bytes = Message::GetGrapheneTxn(GetGrapheneTxnMsg {
        block_id: Digest([0x33; 32]),
        short_ids: vec![1, 0x0102030405060708],
    })
    .to_vec();
    assert_eq!(
        hex::encode(&bytes),
        "1331000000\
         3333333333333333333333333333333333333333333333333333333333333333\
         02\
         0100000000000000\
         0807060504030201"
            .replace(char::is_whitespace, "")
    );
}

#[test]
fn golden_txid() {
    // Transaction IDs are double-SHA256 of the payload; pin one vector.
    let tx = Transaction::new(&b"graphene golden vector"[..]);
    assert_eq!(tx.id().to_hex(), graphene_hashes::sha256d(b"graphene golden vector").to_hex());
    // And the short ID is its little-endian 8-byte prefix.
    let expect = u64::from_le_bytes(tx.id().0[..8].try_into().unwrap());
    assert_eq!(graphene_hashes::short_id_8(tx.id()), expect);
}

#[test]
fn golden_frames_decode_back() {
    // The golden encodings above must decode to equal values.
    for msg in [
        Message::Inv(InvMsg { block_id: Digest([0x11; 32]) }),
        Message::GetData(GetDataMsg { block_id: Digest([0x22; 32]), mempool_count: 60_000 }),
    ] {
        let bytes = msg.to_vec();
        let back = Message::decode_exact(&bytes).expect("golden frame decodes");
        assert_eq!(back.to_vec(), bytes);
    }
}
