//! Cross-crate property-based tests on the suite's core invariants.

use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{merkle_root, sha256, Digest, MerkleTree};
use graphene_iblt::Iblt;
use graphene_wire::messages::{GetDataMsg, InvMsg, Message};
use graphene_wire::{Decode, Encode};
use proptest::prelude::*;
use std::collections::HashSet;

fn digests(n: usize, tag: u64) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
}

proptest! {
    /// Bloom filters never produce false negatives, for any size/FPR combo.
    #[test]
    fn bloom_no_false_negatives(n in 1usize..400, fpr in 0.001f64..0.9, salt: u64) {
        let ids = digests(n, salt);
        let mut f = BloomFilter::new(n, fpr, salt);
        for id in &ids {
            f.insert(id);
        }
        prop_assert!(ids.iter().all(|id| f.contains(id)));
    }

    /// IBLT subtraction recovers exactly the symmetric difference whenever
    /// the table is large enough — and never recovers a phantom value.
    #[test]
    fn iblt_difference_exact(
        shared in 0usize..150,
        only_a in 0usize..20,
        only_b in 0usize..20,
        salt: u64,
    ) {
        let diff = only_a + only_b;
        let cells = (diff * 3).max(12); // generous τ = 3
        let mut a = Iblt::new(cells, 3, salt);
        let mut b = Iblt::new(cells, 3, salt);
        let base = salt as u64 | 1;
        for i in 0..shared as u64 {
            a.insert(base.wrapping_add(i));
            b.insert(base.wrapping_add(i));
        }
        let a_vals: Vec<u64> = (0..only_a as u64).map(|i| base.wrapping_mul(31).wrapping_add(i)).collect();
        let b_vals: Vec<u64> = (0..only_b as u64).map(|i| base.wrapping_mul(37).wrapping_add(i)).collect();
        // Guard against accidental overlap in the synthetic values.
        let a_set: HashSet<u64> = a_vals.iter().copied().collect();
        prop_assume!(b_vals.iter().all(|v| !a_set.contains(v)));
        prop_assume!(a_vals.iter().all(|v| (*v).wrapping_sub(base) >= shared as u64));
        prop_assume!(b_vals.iter().all(|v| (*v).wrapping_sub(base) >= shared as u64));
        for v in &a_vals { a.insert(*v); }
        for v in &b_vals { b.insert(*v); }
        let mut d = a.subtract(&b).unwrap();
        let r = d.peel().unwrap();
        if r.complete {
            let left: HashSet<u64> = r.only_left.iter().copied().collect();
            let right: HashSet<u64> = r.only_right.iter().copied().collect();
            prop_assert_eq!(left, a_vals.into_iter().collect::<HashSet<u64>>());
            prop_assert_eq!(right, b_vals.into_iter().collect::<HashSet<u64>>());
        } else {
            // Partial results must still be subsets of the true difference.
            prop_assert!(r.only_left.iter().all(|v| a_vals.contains(v)));
            prop_assert!(r.only_right.iter().all(|v| b_vals.contains(v)));
        }
    }

    /// Merkle proofs verify for every leaf and fail for any other leaf.
    #[test]
    fn merkle_proofs_sound(n in 1usize..60, probe in 0usize..60, salt: u64) {
        let leaves = digests(n, salt);
        let tree = MerkleTree::new(&leaves);
        prop_assert_eq!(tree.root(), merkle_root(&leaves));
        let idx = probe % n;
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&leaves[idx], &tree.root()));
        if n > 1 {
            let other = (idx + 1) % n;
            prop_assert!(!proof.verify(&leaves[other], &tree.root()));
        }
    }

    /// Wire frames round-trip for arbitrary digests and counts.
    #[test]
    fn wire_roundtrip_inv_getdata(id_bytes: [u8; 32], count: u64) {
        let inv = Message::Inv(InvMsg { block_id: Digest(id_bytes) });
        let bytes = inv.to_vec();
        prop_assert_eq!(bytes.len(), inv.wire_size());
        prop_assert!(Message::decode_exact(&bytes).is_ok());

        let gd = Message::GetData(GetDataMsg { block_id: Digest(id_bytes), mempool_count: count });
        let bytes = gd.to_vec();
        prop_assert_eq!(bytes.len(), gd.wire_size());
        match Message::decode_exact(&bytes).unwrap() {
            Message::GetData(m) => prop_assert_eq!(m.mempool_count, count),
            _ => prop_assert!(false, "wrong variant"),
        }
    }

    /// The Theorem 1 padding is monotone and always exceeds its input.
    #[test]
    fn a_star_monotone(a in 1usize..5000) {
        let beta = 239.0 / 240.0;
        let cur = graphene::params::a_star(a as f64, beta);
        let next = graphene::params::a_star((a + 1) as f64, beta);
        prop_assert!(cur > a);
        prop_assert!(next >= cur);
    }
}
