//! Stress tests — `#[ignore]`d by default; run with
//! `cargo test --release -- --ignored` when you want the heavy assurances.

use graphene::config::GrapheneConfig;
use graphene::session::{relay_block, RelayOutcome};
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use rand::{rngs::StdRng, SeedableRng};

/// A 50,000-transaction block against a 150,000-transaction mempool —
/// well beyond any mainnet block to date.
#[test]
#[ignore = "heavy: ~1 minute in release"]
fn giant_block_relay() {
    let cfg = GrapheneConfig::default();
    let params = ScenarioParams {
        block_size: 50_000,
        extra_mempool_multiple: 2.0,
        block_fraction_in_mempool: 1.0,
        profile: TxProfile::Fixed(32),
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(1));
    let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    assert_eq!(r.ordered_ids.as_deref(), Some(&s.block.ids()[..]));
    // Compact Blocks would need 300 KB; Graphene must stay far below.
    assert!(r.bytes.total_excluding_txns() < 150_000, "{} bytes", r.bytes.total_excluding_txns());
}

/// 500 consecutive relays with mixed parameters: no failures beyond the
/// configured 1/240 budget, no wrong blocks, ever.
#[test]
#[ignore = "heavy: a few minutes in release"]
fn sustained_relay_marathon() {
    let cfg = GrapheneConfig::default();
    let mut failures = 0usize;
    for seed in 0..500u64 {
        let params = ScenarioParams {
            block_size: 200 + (seed as usize % 5) * 400,
            extra_mempool_multiple: (seed % 4) as f64,
            block_fraction_in_mempool: if seed % 3 == 0 { 1.0 } else { 0.8 },
            profile: TxProfile::Fixed(64),
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
        let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
        match r.outcome {
            RelayOutcome::Failed { .. } => failures += 1,
            _ => {
                assert_eq!(
                    r.ordered_ids.as_deref(),
                    Some(&s.block.ids()[..]),
                    "seed {seed}: wrong block accepted"
                );
            }
        }
    }
    // 500 relays at a 1/240 per-structure failure budget: a handful of
    // end-to-end failures would still be within spec; more means a bug.
    assert!(failures <= 6, "{failures}/500 relay failures");
}

/// A 60,000-transaction mempool sync (the ETH-scale shape).
#[test]
#[ignore = "heavy: ~1 minute in release"]
fn giant_mempool_sync() {
    use graphene::mempool_sync::sync_mempools;
    let (a, b) =
        Scenario::mempool_sync(60_000, 0.9, TxProfile::Fixed(32), &mut StdRng::seed_from_u64(2));
    let (report, sa, sb) = sync_mempools(&a, &b, &GrapheneConfig::default());
    assert!(report.success);
    assert_eq!(sa.len(), report.union_size);
    assert_eq!(sb.len(), report.union_size);
}
