//! Offline vendored subset of the `bytes` crate API used by this workspace.
//!
//! Provides [`Bytes`] (a cheaply clonable, reference-counted immutable byte
//! buffer), the [`Buf`] reader trait for `&[u8]` cursors, and the [`BufMut`]
//! writer trait for `Vec<u8>`. Only the little-endian accessors the wire
//! format needs are included.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (clones share one allocation).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes { data: v.as_bytes().into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

/// Sequential reader over a byte source. All multi-byte reads are
/// little-endian and panic when the source is exhausted (mirroring the
/// upstream crate; length-check with [`Buf::remaining`] first).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Fill `dst` from the source, advancing past the copied bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, tail) = self.split_at(2);
        *self = tail;
        u16::from_le_bytes(head.try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer into a growable sink. All multi-byte writes are
/// little-endian.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(&*c, &[1, 2, 3]);
    }

    #[test]
    fn buf_roundtrip() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16_le(0x0102);
        v.put_u32_le(0xdead_beef);
        v.put_u64_le(42);
        v.put_slice(&[9, 9]);
        let mut cur = v.as_slice();
        assert_eq!(cur.remaining(), 17);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0x0102);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_u64_le(), 42);
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        assert_eq!(two, [9, 9]);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cur = &data[..];
        cur.advance(3);
        assert_eq!(cur, &[4]);
    }
}
