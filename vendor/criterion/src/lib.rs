//! Offline vendored subset of the `criterion` API used by this workspace.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a plain calibrated `Instant` loop (median of a few
//! samples) printed to stdout — no statistics engine, plots, or baselines.
//! Good enough to keep `cargo bench` runnable and the harnesses compiling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how much per-iteration setup costs in `iter_batched`.
/// This implementation runs one setup per timed iteration regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap setup relative to the routine.
    SmallInput,
    /// Expensive setup relative to the routine.
    LargeInput,
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher {
    /// Median wall-clock time per iteration from the last `iter*` call.
    ns_per_iter: f64,
}

/// Target time to spend per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
const SAMPLES: usize = 5;

impl Bencher {
    fn new() -> Bencher {
        Bencher { ns_per_iter: f64::NAN }
    }

    /// Time a routine.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count filling the sample target.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                100
            } else {
                (SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            });
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time a routine with untimed per-iteration setup.
    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        // Setup is excluded by timing each routine call individually.
        let mut iters: u64 = 1;
        loop {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                spent += start.elapsed();
            }
            if spent >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(if spent.is_zero() {
                100
            } else {
                (SAMPLE_TARGET.as_nanos() / spent.as_nanos().max(1) + 1) as u64
            });
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                spent += start.elapsed();
            }
            samples.push(spent.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{id:<40} {:>12}/iter", format_ns(ns));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / (ns / 1e9);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>14.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>14.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput used for rate reporting by subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.ns_per_iter, self.throughput);
        self
    }

    /// End the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.into(), b.ns_per_iter, None);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 4], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
