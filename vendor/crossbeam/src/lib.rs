//! Offline vendored subset of the `crossbeam` crate API used by this
//! workspace: scoped threads with the crossbeam 0.8 calling convention
//! (`crossbeam::thread::scope` returning a `Result`, spawn closures taking
//! a scope argument), implemented over `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Error payload of a panicked scope or thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are all joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a scope
        /// token (crossbeam convention; callers typically bind it `_`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle { inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })) }
        }
    }

    /// Create a scope for spawning borrowing threads. Returns `Ok` with the
    /// closure's value; unlike crossbeam proper this never returns `Err`
    /// (an unjoined panicking child re-panics here instead), which is
    /// strictly stricter and fine for in-tree callers.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_through_scope_token() {
            let r = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
            })
            .unwrap();
            assert_eq!(r, 42);
        }
    }
}
