//! Offline vendored subset of the `parking_lot` API used by this workspace:
//! [`Mutex`] and [`RwLock`] with the panic-free (non-poisoning) lock
//! methods, implemented over `std::sync` primitives. A poisoned std lock is
//! recovered rather than propagated, matching parking_lot semantics.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
