//! Offline vendored subset of the `proptest` API used by this workspace.
//!
//! Implements the `proptest!` macro (both the fn-item and closure forms),
//! `any`, range strategies, `collection::{vec, hash_set}`, and the
//! `prop_assert*` / `prop_assume!` macros over a deterministic case runner.
//! There is no shrinking: a failing case reports its inputs (via the
//! assertion message) and its case index instead. Cases are generated from
//! fixed seeds, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

/// Number of cases each property runs (fixed; override not needed in-tree).
pub const CASES: u32 = 64;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for these inputs.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Random> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Uniformly random value of `T` (`any::<u64>()`, `any::<[u8; 32]>()`, …).
pub fn any<T: rand::Random>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size`-many elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet` with a size drawn from `size` (duplicates are redrawn).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = rng.random_range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            // Duplicates are redrawn; bail out after a generous attempt
            // budget so a narrow value domain cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Deterministic per-case RNG (a pure function of the case index).
#[doc(hidden)]
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x0070_726f_7074_6573_u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test entry point. Supports the item form
/// (`proptest! { #[test] fn name(x in strat, y: Ty) { .. } }`) and the
/// closure form (`proptest!(|(x in strat)| { .. })`).
#[macro_export]
macro_rules! proptest {
    (|($($args:tt)*)| $body:block) => {
        $crate::__proptest_case!([] [$($args)*] $body)
    };
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!([] [$($args)*] $body)
            }
        )*
    };
}

/// Argument-list muncher and case runner behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Parser: peel one `pattern in strategy` or `name: Type` argument.
    ([$($acc:tt)*] [mut $name:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case!([$($acc)* {mut $name} {$strat}] [$($rest)*] $body)
    };
    ([$($acc:tt)*] [mut $name:ident in $strat:expr] $body:block) => {
        $crate::__proptest_case!([$($acc)* {mut $name} {$strat}] [] $body)
    };
    ([$($acc:tt)*] [$name:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case!([$($acc)* {$name} {$strat}] [$($rest)*] $body)
    };
    ([$($acc:tt)*] [$name:ident in $strat:expr] $body:block) => {
        $crate::__proptest_case!([$($acc)* {$name} {$strat}] [] $body)
    };
    ([$($acc:tt)*] [$name:ident : $ty:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case!([$($acc)* {$name} {$crate::any::<$ty>()}] [$($rest)*] $body)
    };
    ([$($acc:tt)*] [$name:ident : $ty:ty] $body:block) => {
        $crate::__proptest_case!([$($acc)* {$name} {$crate::any::<$ty>()}] [] $body)
    };
    // Runner: all arguments parsed into {pattern} {strategy} pairs.
    ([$({$($pat:tt)+} {$strat:expr})*] [] $body:block) => {{
        let mut __accepted: u32 = 0;
        let mut __rejected: u32 = 0;
        let mut __case: u64 = 0;
        while __accepted < $crate::CASES {
            if __rejected > 16 * $crate::CASES {
                panic!("proptest: too many cases rejected by prop_assume!");
            }
            let mut __rng = $crate::case_rng(__case);
            __case += 1;
            $(let $($pat)+ = $crate::Strategy::generate(&($strat), &mut __rng);)*
            let __result: ::core::result::Result<(), $crate::TestCaseError> =
                (|| { $body; ::core::result::Result::Ok(()) })();
            match __result {
                ::core::result::Result::Ok(()) => __accepted += 1,
                ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => __rejected += 1,
                ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                    panic!("proptest case #{} failed: {}", __case - 1, __msg)
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Item form with all three argument styles.
        #[test]
        fn item_form(n in 1usize..50, mut v in crate::collection::vec(any::<u8>(), 0..10), flag: bool) {
            v.push(n as u8);
            prop_assert!(!v.is_empty());
            prop_assert!(n < 50, "n was {n}");
            if flag {
                prop_assert_ne!(v.len(), 0);
            }
        }

        /// `prop_assume!` rejects without failing.
        #[test]
        fn assume_form(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn closure_form_runs() {
        let mut hits = 0u32;
        proptest!(|(x in 0u64..10)| {
            prop_assert!(x < 10);
            hits += 1;
        });
        assert_eq!(hits, crate::CASES);
    }

    #[test]
    fn hash_set_respects_min_size() {
        let strat = crate::collection::hash_set(any::<u64>(), 5..10);
        let mut rng = crate::case_rng(3);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!((5..10).contains(&s.len()), "size {}", s.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest!(|(x in 0u64..10)| {
            prop_assert!(x < 5, "x too big: {x}");
        });
    }
}
