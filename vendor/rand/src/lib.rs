//! Offline vendored subset of the `rand` crate API used by this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the small slice of `rand` it actually uses: [`StdRng`]
//! (a xoshiro256++ generator), [`SeedableRng`], and the [`RngExt`]
//! extension trait (`random`, `random_range`, `random_bool`, `fill`).
//!
//! Determinism contract: `StdRng` is a pure function of its seed. The
//! generator never reads OS entropy, the clock, or thread identity, so any
//! seed produces the same stream on every machine, every run, and every
//! thread. The whole experiment suite's reproducibility rests on this.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 — the standard
    /// recipe, so nearby integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advance `state` and return the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG.
pub trait Random: Sized {
    /// Draw one uniformly random value.
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random(rng: &mut (impl RngCore + ?Sized)) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Width of `start..end` as a `u128` (0 when empty).
    fn span(start: Self, end: Self) -> u128;
    /// `start + offset`, where `offset < span`.
    fn offset(start: Self, offset: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformInt for $t {
            fn span(start: Self, end: Self) -> u128 {
                if end <= start { 0 } else { (end as $wide).wrapping_sub(start as $wide) as u128 }
            }
            fn offset(start: Self, offset: u128) -> Self {
                (start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-with-rejection.
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return m >> 64;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "cannot sample from an empty range");
        T::offset(self.start, sample_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let span = T::span(start, end) + 1;
        T::offset(start, sample_below(rng, span))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Slice types fillable by [`RngExt::fill`].
pub trait Fill {
    /// Overwrite `self` with random data.
    fn fill(&mut self, rng: &mut (impl RngCore + ?Sized));
}

impl Fill for [u8] {
    fn fill(&mut self, rng: &mut (impl RngCore + ?Sized)) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn fill(&mut self, rng: &mut (impl RngCore + ?Sized)) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniformly random value in `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fill a slice with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill(self);
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            assert!(v < 10);
            let w: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Single-element inclusive range is valid.
        assert_eq!(rng.random_range(3u32..=3), 3);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_coarse() {
        // 10 buckets, 10k draws: each bucket within 3x of expectation.
        let mut rng = StdRng::seed_from_u64(17);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!(b > 700 && b < 1300, "bucket count {b} far from 1000");
        }
    }
}
