//! The standard generator: xoshiro256++.
//!
//! Chosen for the vendored `rand` because it is tiny, fast, passes BigCrush
//! / PractRand at the scales this suite samples (tens of millions of draws
//! per figure), and — crucially — is a pure function of its 256-bit seed.

use crate::{splitmix64, RngCore, SeedableRng};

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; remap it through
        // SplitMix64 like the reference implementation recommends.
        if s == [0; 4] {
            let mut sm = 0xdead_beef_cafe_f00du64;
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference xoshiro256++ outputs for state [1, 2, 3, 4] (from the
        // public-domain C reference by Blackman & Vigna).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = StdRng::from_seed(seed);
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0, "all-zero state must be remapped");
        assert_ne!(a, b);
    }
}
